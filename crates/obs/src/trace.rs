//! Request-scoped tracing: a bounded flight recorder with causal
//! spans and tail-based sampling.
//!
//! Aggregate histograms (the rest of this crate) answer "how slow is
//! p99 search?"; this module answers "*why* was that one search slow?"
//! by recording a per-request timeline of causally nested spans — each
//! event carries a monotonic timestamp, a trace id, a span id and its
//! parent span id, a static name and a handful of key/value attributes.
//!
//! Design, in the order the hot path sees it:
//!
//! 1. **Disabled is branch-cheap.** [`span`] / [`root`] / [`instant`]
//!    first load one relaxed atomic; when tracing is off they return a
//!    no-op guard without allocating (guarded by the overhead test in
//!    `tests/overhead.rs`).
//! 2. **Recording is lock-free.** While a trace is active, events are
//!    pushed into a thread-local buffer owned by the current request —
//!    no atomics, no locks, no cross-thread traffic. Each trace's
//!    buffer is bounded; overflowing events are counted, never silently
//!    lost, and Begin/End balance is preserved (an End whose Begin
//!    overflowed is dropped with it).
//! 3. **Tail sampling at completion.** When the root span ends, the
//!    whole trace is either *kept* — always, if it ran longer than the
//!    configured slow threshold; otherwise with the configured
//!    probability (deterministic in the trace id) — or discarded
//!    wholesale. Only kept traces pay the one uncontended mutex lock to
//!    publish into the global ring.
//! 4. **The ring is a flight recorder.** A bounded ring of kept
//!    traces; publishing past capacity evicts the oldest whole traces
//!    and adds their event counts to the dropped-event counter, so
//!    `kept events + dropped events` always equals everything ever
//!    published (property-tested in `tests/trace_properties.rs`).
//!
//! Export via [`crate::chrome::export_chrome`] (Chrome trace-event
//! JSON, loadable in Perfetto / `chrome://tracing`) or walk the
//! [`Recorder::snapshot`] directly.
//!
//! ```
//! use xar_obs::trace::{Recorder, TraceConfig};
//!
//! let rec = Recorder::new(TraceConfig::keep_all());
//! {
//!     let mut root = rec.start_root("request");
//!     root.attr("idx", 7u64);
//!     {
//!         let mut s = rec.child_span("search");
//!         s.attr("candidates", 42u64);
//!     }
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.traces.len(), 1);
//! assert_eq!(snap.traces[0].root_name, "request");
//! // root B/E + child B/E:
//! assert_eq!(snap.traces[0].events.len(), 4);
//! ```

use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum attributes one event carries; further `attr` calls are
/// silently ignored (attributes are debugging hints, not data).
pub const MAX_ATTRS: usize = 4;

/// An attribute value: small scalars and static strings only, so the
/// record path never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Static string.
    Str(&'static str),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}
impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        Self::Str(v)
    }
}

/// A fixed-capacity (no-allocation) attribute list.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttrList([Option<(&'static str, AttrValue)>; MAX_ATTRS]);

impl AttrList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a key/value pair (ignored once full).
    pub fn push(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(slot) = self.0.iter_mut().find(|s| s.is_none()) {
            *slot = Some((key, value.into()));
        }
    }

    /// Builder-style [`AttrList::push`].
    pub fn with(mut self, key: &'static str, value: impl Into<AttrValue>) -> Self {
        self.push(key, value);
        self
    }

    /// Iterate over the present pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, AttrValue)> + '_ {
        self.0.iter().filter_map(|s| *s)
    }

    /// Number of present pairs.
    pub fn len(&self) -> usize {
        self.0.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no pairs are present.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|s| s.is_none())
    }
}

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (Chrome phase `B`).
    Begin,
    /// A span closed (Chrome phase `E`).
    End,
    /// A point-in-time marker (Chrome phase `i`).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Monotonic nanoseconds since the recorder's epoch.
    pub ts_ns: u64,
    /// The trace this event belongs to.
    pub trace: u64,
    /// The span this event belongs to (the marked span for Begin/End,
    /// the enclosing span for Instant; 0 = none).
    pub span: u64,
    /// The span's parent span id (0 = the trace root has no parent).
    pub parent: u64,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Static event name.
    pub name: &'static str,
    /// Small key/value attributes.
    pub attrs: AttrList,
    /// Recording thread (small dense index, not the OS thread id).
    pub tid: u64,
}

/// One kept (published) trace.
#[derive(Debug, Clone)]
pub struct KeptTrace {
    /// Trace id.
    pub trace: u64,
    /// Name the root span was opened with.
    pub root_name: &'static str,
    /// Root start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Root duration, nanoseconds.
    pub dur_ns: u64,
    /// Whether the trace ran longer than the slow threshold (kept
    /// unconditionally) rather than being probabilistically sampled.
    pub slow: bool,
    /// Whether this is an adopted cross-thread segment (published
    /// unconditionally; shares its trace id with a root elsewhere).
    pub adopted: bool,
    /// The events, in per-thread recording order.
    pub events: Vec<TraceEvent>,
}

/// Recorder tunables.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Traces whose root runs at least this long are always kept.
    pub slow_threshold_ns: u64,
    /// Per-mille probability (0..=1000) of keeping a non-slow trace.
    pub sample_per_mille: u32,
    /// Ring capacity in events; publishing past it evicts the oldest
    /// traces (their event counts go to the dropped counter).
    pub capacity_events: usize,
    /// Per-trace event budget; events beyond it are counted as dropped
    /// at publish time (Begin/End balance preserved).
    pub max_events_per_trace: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            slow_threshold_ns: 1_000_000, // 1 ms
            sample_per_mille: 10,         // 1 %
            capacity_events: 65_536,
            max_events_per_trace: 1_024,
        }
    }
}

impl TraceConfig {
    /// Keep every trace (tests, snapshots of small runs).
    pub fn keep_all() -> Self {
        Self { slow_threshold_ns: 0, sample_per_mille: 1_000, ..Self::default() }
    }
}

/// Recorder counters at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Root traces started.
    pub started_traces: u64,
    /// Traces kept (slow or sampled in).
    pub kept_traces: u64,
    /// Traces discarded by tail sampling.
    pub sampled_out_traces: u64,
    /// Adopted cross-thread segments published.
    pub adopted_segments: u64,
    /// Events lost to ring eviction, per-trace overflow, or lifecycle
    /// eviction. `Σ events-in-ring + dropped_events` equals every event
    /// ever published or overflowed.
    pub dropped_events: u64,
    /// The active slow threshold, nanoseconds.
    pub slow_threshold_ns: u64,
    /// The active sampling probability, per mille.
    pub sample_per_mille: u32,
}

/// Everything the recorder holds, cloned out under one lock.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Kept traces, oldest first.
    pub traces: Vec<KeptTrace>,
    /// Out-of-band lifecycle instants (see [`Recorder::lifecycle`]).
    pub lifecycle: Vec<TraceEvent>,
    /// Counters.
    pub stats: TraceStats,
}

struct Ring {
    traces: VecDeque<KeptTrace>,
    total_events: usize,
    kept_ids: HashSet<u64>,
    lifecycle: VecDeque<TraceEvent>,
}

/// The flight recorder. One global instance serves the whole process
/// (see [`recorder`]); tests construct private ones.
pub struct Recorder {
    enabled: AtomicBool,
    slow_ns: AtomicU64,
    sample_per_mille: AtomicU32,
    capacity_events: AtomicUsize,
    max_events_per_trace: AtomicUsize,
    next_id: AtomicU64,
    started: AtomicU64,
    kept: AtomicU64,
    sampled_out: AtomicU64,
    adopted: AtomicU64,
    dropped_events: AtomicU64,
    epoch: Instant,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish()
    }
}

/// A portable handle to the current trace position: the trace id and
/// the innermost open span. Capture with [`current_ctx`], move it to
/// another thread, and continue the same trace there with [`adopt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id.
    pub trace: u64,
    /// Span id the adopted segment should parent under.
    pub span: u64,
}

// ---------------------------------------------------------------------------
// Thread-local state
// ---------------------------------------------------------------------------

struct Active {
    rec: Arc<Recorder>,
    trace: u64,
    root_span: u64,
    root_name: &'static str,
    start_ns: u64,
    /// Open span ids; the last entry is the current parent.
    stack: Vec<u64>,
    events: Vec<TraceEvent>,
    /// Open spans whose Begin overflowed (their Ends must be dropped
    /// too, to preserve B/E balance).
    overflow_depth: usize,
    overflow: u64,
    max_events: usize,
    adopted: bool,
    tid: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<Active>> = const { RefCell::new(None) };
    static THREAD_IDX: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn thread_idx() -> u64 {
    THREAD_IDX.with(|c| {
        let v = c.get();
        if v != 0 {
            return v;
        }
        static NEXT: AtomicU64 = AtomicU64::new(1);
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        c.set(v);
        v
    })
}

/// SplitMix64 — the keep/drop coin for tail sampling, deterministic in
/// the trace id so tests and re-runs agree.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Recorder {
    /// A recorder with the given tunables, initially **enabled**.
    /// (The process-global recorder from [`recorder`] starts disabled.)
    pub fn new(config: TraceConfig) -> Arc<Self> {
        Arc::new(Self {
            enabled: AtomicBool::new(true),
            slow_ns: AtomicU64::new(config.slow_threshold_ns),
            sample_per_mille: AtomicU32::new(config.sample_per_mille.min(1_000)),
            capacity_events: AtomicUsize::new(config.capacity_events),
            max_events_per_trace: AtomicUsize::new(config.max_events_per_trace),
            next_id: AtomicU64::new(1),
            started: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            adopted: AtomicU64::new(0),
            dropped_events: AtomicU64::new(0),
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                traces: VecDeque::new(),
                total_events: 0,
                kept_ids: HashSet::new(),
                lifecycle: VecDeque::new(),
            }),
        })
    }

    /// Replace the tunables (takes effect for traces started after the
    /// call).
    pub fn configure(&self, config: TraceConfig) {
        self.slow_ns.store(config.slow_threshold_ns, Ordering::Relaxed);
        self.sample_per_mille.store(config.sample_per_mille.min(1_000), Ordering::Relaxed);
        self.capacity_events.store(config.capacity_events, Ordering::Relaxed);
        self.max_events_per_trace.store(config.max_events_per_trace, Ordering::Relaxed);
    }

    /// Turn recording on or off. Off makes every tracing entry point a
    /// single relaxed load plus a branch.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Would tail sampling keep trace id `trace` absent slowness?
    pub fn would_sample(&self, trace: u64) -> bool {
        (splitmix64(trace) % 1_000) < u64::from(self.sample_per_mille.load(Ordering::Relaxed))
    }

    /// Start a root span, making `name` the active trace on this
    /// thread. Returns a no-op guard if the recorder is disabled or a
    /// trace is already active on this thread (nested roots do not
    /// stack).
    pub fn start_root(self: &Arc<Self>, name: &'static str) -> RootSpan {
        if !self.enabled() {
            return RootSpan { armed: false, attrs: AttrList::new() };
        }
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            if slot.is_some() {
                return RootSpan { armed: false, attrs: AttrList::new() };
            }
            self.started.fetch_add(1, Ordering::Relaxed);
            let trace = self.next_id.fetch_add(2, Ordering::Relaxed);
            let root_span = trace + 1;
            let start_ns = self.now_ns();
            let tid = thread_idx();
            let mut active = Active {
                rec: Arc::clone(self),
                trace,
                root_span,
                root_name: name,
                start_ns,
                stack: vec![root_span],
                events: Vec::with_capacity(64),
                overflow_depth: 0,
                overflow: 0,
                max_events: self.max_events_per_trace.load(Ordering::Relaxed),
                adopted: false,
                tid,
            };
            active.push(TraceEvent {
                ts_ns: start_ns,
                trace,
                span: root_span,
                parent: 0,
                kind: EventKind::Begin,
                name,
                attrs: AttrList::new(),
                tid,
            });
            *slot = Some(active);
            crate::profile::span_stack_push(name);
            RootSpan { armed: true, attrs: AttrList::new() }
        })
    }

    /// Continue trace `ctx` on this thread (cross-thread propagation).
    /// The segment is published unconditionally when the guard drops —
    /// the root's tail-sampling verdict is made elsewhere, so adopted
    /// segments opt out of it (documented flight-recorder semantics).
    pub fn adopt(self: &Arc<Self>, ctx: TraceCtx, name: &'static str) -> RootSpan {
        if !self.enabled() {
            return RootSpan { armed: false, attrs: AttrList::new() };
        }
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            if slot.is_some() {
                return RootSpan { armed: false, attrs: AttrList::new() };
            }
            let span = self.next_id.fetch_add(1, Ordering::Relaxed);
            let start_ns = self.now_ns();
            let tid = thread_idx();
            let mut active = Active {
                rec: Arc::clone(self),
                trace: ctx.trace,
                root_span: span,
                root_name: name,
                start_ns,
                stack: vec![span],
                events: Vec::with_capacity(16),
                overflow_depth: 0,
                overflow: 0,
                max_events: self.max_events_per_trace.load(Ordering::Relaxed),
                adopted: true,
                tid,
            };
            active.push(TraceEvent {
                ts_ns: start_ns,
                trace: ctx.trace,
                span,
                parent: ctx.span,
                kind: EventKind::Begin,
                name,
                attrs: AttrList::new(),
                tid,
            });
            *slot = Some(active);
            crate::profile::span_stack_push(name);
            RootSpan { armed: true, attrs: AttrList::new() }
        })
    }

    /// Open a child span under the active trace on this thread (no-op
    /// guard when disabled or no trace is active).
    pub fn child_span(self: &Arc<Self>, name: &'static str) -> Span {
        if !self.enabled() {
            return Span { armed: false, name, attrs: AttrList::new() };
        }
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let Some(active) = slot.as_mut() else {
                return Span { armed: false, name, attrs: AttrList::new() };
            };
            if !Arc::ptr_eq(&active.rec, self) {
                return Span { armed: false, name, attrs: AttrList::new() };
            }
            active.begin_child(name);
            crate::profile::span_stack_push(name);
            Span { armed: true, name, attrs: AttrList::new() }
        })
    }

    /// Record a point-in-time event under the active trace.
    pub fn instant(self: &Arc<Self>, name: &'static str, attrs: AttrList) {
        if !self.enabled() {
            return;
        }
        ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let Some(active) = slot.as_mut() else { return };
            if !Arc::ptr_eq(&active.rec, self) {
                return;
            }
            let ev = TraceEvent {
                ts_ns: active.rec.now_ns(),
                trace: active.trace,
                span: *active.stack.last().expect("root always open"),
                parent: 0,
                kind: EventKind::Instant,
                name,
                attrs,
                tid: active.tid,
            };
            active.push(ev);
        });
    }

    /// Append an out-of-band instant to an already-completed trace —
    /// the simulator uses this for lifecycle milestones (picked up /
    /// dropped off) that happen long after the request's root span
    /// closed. Recorded only if `trace` was kept (still in the ring),
    /// so lifecycle volume stays proportional to kept traces.
    pub fn lifecycle(&self, trace: u64, name: &'static str, attrs: AttrList) {
        if !self.enabled() {
            return;
        }
        let ev = TraceEvent {
            ts_ns: self.now_ns(),
            trace,
            span: 0,
            parent: 0,
            kind: EventKind::Instant,
            name,
            attrs,
            tid: thread_idx(),
        };
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if !ring.kept_ids.contains(&trace) {
            return;
        }
        ring.lifecycle.push_back(ev);
        let cap = (self.capacity_events.load(Ordering::Relaxed) / 4).max(1);
        while ring.lifecycle.len() > cap {
            ring.lifecycle.pop_front();
            self.dropped_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The trace id and innermost span on this thread, if a trace is
    /// active (capture for [`Recorder::adopt`] / [`Recorder::lifecycle`]).
    pub fn current_ctx(&self) -> Option<TraceCtx> {
        ACTIVE.with(|a| {
            a.borrow().as_ref().map(|active| TraceCtx {
                trace: active.trace,
                span: *active.stack.last().expect("root always open"),
            })
        })
    }

    fn publish(&self, kept: KeptTrace, overflowed: u64) {
        self.dropped_events.fetch_add(overflowed, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.total_events += kept.events.len();
        ring.kept_ids.insert(kept.trace);
        ring.traces.push_back(kept);
        let cap = self.capacity_events.load(Ordering::Relaxed);
        while ring.total_events > cap && ring.traces.len() > 1 {
            let evicted = ring.traces.pop_front().expect("len > 1");
            ring.total_events -= evicted.events.len();
            ring.kept_ids.remove(&evicted.trace);
            self.dropped_events.fetch_add(evicted.events.len() as u64, Ordering::Relaxed);
        }
    }

    /// Clone out every kept trace, lifecycle event and counter.
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        TraceSnapshot {
            traces: ring.traces.iter().cloned().collect(),
            lifecycle: ring.lifecycle.iter().cloned().collect(),
            stats: self.stats(),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            started_traces: self.started.load(Ordering::Relaxed),
            kept_traces: self.kept.load(Ordering::Relaxed),
            sampled_out_traces: self.sampled_out.load(Ordering::Relaxed),
            adopted_segments: self.adopted.load(Ordering::Relaxed),
            dropped_events: self.dropped_events.load(Ordering::Relaxed),
            slow_threshold_ns: self.slow_ns.load(Ordering::Relaxed),
            sample_per_mille: self.sample_per_mille.load(Ordering::Relaxed),
        }
    }

    /// Discard all kept traces and lifecycle events (counters are kept).
    pub fn clear(&self) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.traces.clear();
        ring.total_events = 0;
        ring.kept_ids.clear();
        ring.lifecycle.clear();
    }
}

impl Active {
    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.max_events {
            self.overflow += 1;
            return;
        }
        self.events.push(ev);
    }

    fn begin_child(&mut self, name: &'static str) {
        // +1 below reserves room for the matching End, so a Begin that
        // fits never strands an unmatched End in the overflow counter.
        if self.events.len() + 1 >= self.max_events {
            self.overflow_depth += 1;
            self.overflow += 2; // the Begin and its future End
            return;
        }
        let span = self.rec.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = *self.stack.last().expect("root always open");
        let ev = TraceEvent {
            ts_ns: self.rec.now_ns(),
            trace: self.trace,
            span,
            parent,
            kind: EventKind::Begin,
            name,
            attrs: AttrList::new(),
            tid: self.tid,
        };
        self.stack.push(span);
        self.events.push(ev);
    }

    fn end_child(&mut self, name: &'static str, attrs: AttrList) {
        if self.overflow_depth > 0 {
            self.overflow_depth -= 1;
            return; // the End's budget was charged with its Begin
        }
        if self.stack.len() <= 1 {
            return; // unbalanced end (guard leaked across root) — ignore
        }
        let span = self.stack.pop().expect("len > 1");
        let parent = *self.stack.last().expect("root below");
        let ev = TraceEvent {
            ts_ns: self.rec.now_ns(),
            trace: self.trace,
            span,
            parent,
            kind: EventKind::End,
            name,
            attrs,
            tid: self.tid,
        };
        // End events always fit: begin_child reserved the slot.
        self.events.push(ev);
    }
}

// ---------------------------------------------------------------------------
// Guards
// ---------------------------------------------------------------------------

/// Guard for a trace root (or an adopted cross-thread segment). On
/// drop the trace completes and the tail-sampling verdict publishes or
/// discards it.
#[derive(Debug)]
#[must_use = "dropping the guard ends the trace"]
pub struct RootSpan {
    armed: bool,
    attrs: AttrList,
}

impl RootSpan {
    /// Attach an attribute to the root span's End event.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.armed {
            self.attrs.push(key, value);
        }
    }

    /// Whether this guard actually records (false when tracing is off).
    pub fn is_recording(&self) -> bool {
        self.armed
    }
}

impl Drop for RootSpan {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        crate::profile::span_stack_pop();
        let attrs = self.attrs;
        ACTIVE.with(|a| {
            let Some(mut active) = a.borrow_mut().take() else { return };
            let rec = Arc::clone(&active.rec);
            let end_ns = rec.now_ns();
            let dur_ns = end_ns.saturating_sub(active.start_ns);
            // Close the root span itself. The push is unconditional:
            // like child Ends, the root End may softly exceed the event
            // budget, because a truncated-but-balanced trace is usable
            // and an unclosed root is not (Timeline::build would drop
            // the whole trace).
            let root_ev = TraceEvent {
                ts_ns: end_ns,
                trace: active.trace,
                span: active.root_span,
                parent: 0,
                kind: EventKind::End,
                name: active.root_name,
                attrs,
                tid: active.tid,
            };
            active.events.push(root_ev);
            let slow = dur_ns >= rec.slow_ns.load(Ordering::Relaxed);
            let keep = active.adopted || slow || rec.would_sample(active.trace);
            if active.adopted {
                rec.adopted.fetch_add(1, Ordering::Relaxed);
            }
            if keep {
                if !active.adopted {
                    rec.kept.fetch_add(1, Ordering::Relaxed);
                }
                let kept = KeptTrace {
                    trace: active.trace,
                    root_name: active.root_name,
                    start_ns: active.start_ns,
                    dur_ns,
                    slow,
                    adopted: active.adopted,
                    events: std::mem::take(&mut active.events),
                };
                rec.publish(kept, active.overflow);
            } else {
                rec.sampled_out.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

/// RAII guard for a child span; records the End event (with any
/// attributes) on drop.
#[derive(Debug)]
pub struct Span {
    armed: bool,
    name: &'static str,
    attrs: AttrList,
}

impl Span {
    /// Attach an attribute to the span's End event.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.armed {
            self.attrs.push(key, value);
        }
    }

    /// Whether this guard actually records (false when tracing is off
    /// or no trace is active).
    pub fn is_recording(&self) -> bool {
        self.armed
    }

    /// End the span now instead of at scope end.
    pub fn stop(self) {
        drop(self);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        crate::profile::span_stack_pop();
        let (name, attrs) = (self.name, self.attrs);
        ACTIVE.with(|a| {
            if let Some(active) = a.borrow_mut().as_mut() {
                active.end_child(name, attrs);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Process-global entry points (what the engines call)
// ---------------------------------------------------------------------------

/// The process-wide recorder. Starts **disabled** — every span helper
/// below is a single relaxed load + branch until something (the CLI's
/// `--trace-out`, a harness, a test) enables it.
pub fn recorder() -> &'static Arc<Recorder> {
    static GLOBAL: OnceLock<Arc<Recorder>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let rec = Recorder::new(TraceConfig::default());
        rec.set_enabled(false);
        rec
    })
}

/// Start a root trace on the global recorder (no-op guard if tracing
/// is disabled or a trace is already active on this thread).
#[inline]
pub fn root(name: &'static str) -> RootSpan {
    let rec = recorder();
    if !rec.enabled() {
        return RootSpan { armed: false, attrs: AttrList::new() };
    }
    rec.start_root(name)
}

/// Open a child span on the global recorder. When tracing is disabled
/// this is one relaxed atomic load, a branch, and a no-alloc guard.
#[inline]
pub fn span(name: &'static str) -> Span {
    let rec = recorder();
    if !rec.enabled() {
        return Span { armed: false, name, attrs: AttrList::new() };
    }
    rec.child_span(name)
}

/// Record an instant event on the global recorder.
#[inline]
pub fn instant(name: &'static str, attrs: AttrList) {
    let rec = recorder();
    if rec.enabled() {
        rec.instant(name, attrs);
    }
}

/// Capture the current trace position on the global recorder.
#[inline]
pub fn current_ctx() -> Option<TraceCtx> {
    let rec = recorder();
    if !rec.enabled() {
        return None;
    }
    rec.current_ctx()
}

/// Continue a captured trace on this thread (global recorder).
#[inline]
pub fn adopt(ctx: TraceCtx, name: &'static str) -> RootSpan {
    recorder().adopt(ctx, name)
}

/// Out-of-band lifecycle instant on the global recorder (see
/// [`Recorder::lifecycle`]).
#[inline]
pub fn lifecycle(trace: u64, name: &'static str, attrs: AttrList) {
    let rec = recorder();
    if rec.enabled() {
        rec.lifecycle(trace, name, attrs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_children_publish_in_order() {
        let rec = Recorder::new(TraceConfig::keep_all());
        {
            let mut root = rec.start_root("request");
            root.attr("idx", 3u64);
            {
                let mut s = rec.child_span("search");
                s.attr("candidates", 9u64);
                let inner = rec.child_span("shortest_path");
                drop(inner);
            }
            rec.instant("offered", AttrList::new().with("matches", 2u64));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.traces.len(), 1);
        let t = &snap.traces[0];
        assert_eq!(t.root_name, "request");
        // B(request) B(search) B(sp) E(sp) E(search) i(offered) E(request)
        assert_eq!(t.events.len(), 7);
        let kinds: Vec<EventKind> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                EventKind::Begin,
                EventKind::Begin,
                EventKind::Begin,
                EventKind::End,
                EventKind::End,
                EventKind::Instant,
                EventKind::End,
            ]
        );
        // Causality: sp's parent is search, search's parent is root.
        let root_span = t.events[0].span;
        let search_span = t.events[1].span;
        assert_eq!(t.events[1].parent, root_span);
        assert_eq!(t.events[2].parent, search_span);
        // Timestamps are monotone within the thread.
        assert!(t.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn sampling_discards_fast_traces() {
        let cfg = TraceConfig {
            slow_threshold_ns: u64::MAX,
            sample_per_mille: 0,
            ..TraceConfig::default()
        };
        let rec = Recorder::new(cfg);
        for _ in 0..32 {
            let _root = rec.start_root("request");
        }
        let snap = rec.snapshot();
        assert!(snap.traces.is_empty());
        assert_eq!(snap.stats.sampled_out_traces, 32);
        assert_eq!(snap.stats.kept_traces, 0);
    }

    #[test]
    fn slow_traces_always_kept() {
        let cfg = TraceConfig {
            slow_threshold_ns: 0, // everything counts as slow
            sample_per_mille: 0,
            ..TraceConfig::default()
        };
        let rec = Recorder::new(cfg);
        {
            let _root = rec.start_root("request");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.traces.len(), 1);
        assert!(snap.traces[0].slow);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::new(TraceConfig::keep_all());
        rec.set_enabled(false);
        {
            let root = rec.start_root("request");
            assert!(!root.is_recording());
            let s = rec.child_span("child");
            assert!(!s.is_recording());
        }
        assert!(rec.snapshot().traces.is_empty());
        assert_eq!(rec.stats().started_traces, 0);
    }

    #[test]
    fn span_without_active_trace_is_noop() {
        let rec = Recorder::new(TraceConfig::keep_all());
        let s = rec.child_span("orphan");
        assert!(!s.is_recording());
        drop(s);
        assert!(rec.snapshot().traces.is_empty());
    }

    #[test]
    fn ring_eviction_counts_dropped_events() {
        let cfg = TraceConfig {
            capacity_events: 8,
            ..TraceConfig::keep_all()
        };
        let rec = Recorder::new(cfg);
        let mut published = 0u64;
        for _ in 0..10 {
            let _root = rec.start_root("request");
            let _c = rec.child_span("child");
            drop(_c);
            published += 4; // root B/E + child B/E
        }
        let snap = rec.snapshot();
        let in_ring: u64 = snap.traces.iter().map(|t| t.events.len() as u64).sum();
        assert_eq!(in_ring + snap.stats.dropped_events, published);
        assert!(snap.stats.dropped_events > 0, "capacity 8 must evict");
    }

    #[test]
    fn per_trace_overflow_keeps_balance_and_count() {
        let cfg = TraceConfig {
            max_events_per_trace: 6,
            ..TraceConfig::keep_all()
        };
        let rec = Recorder::new(cfg);
        {
            let _root = rec.start_root("request");
            for _ in 0..10 {
                let s = rec.child_span("child");
                drop(s);
            }
        }
        let snap = rec.snapshot();
        assert_eq!(snap.traces.len(), 1);
        let t = &snap.traces[0];
        // Balance: every Begin has an End.
        let begins = t.events.iter().filter(|e| e.kind == EventKind::Begin).count();
        let ends = t.events.iter().filter(|e| e.kind == EventKind::End).count();
        assert_eq!(begins, ends);
        // Count: kept + dropped == all 22 events (root B/E + 10×2).
        assert_eq!(t.events.len() as u64 + snap.stats.dropped_events, 22);
    }

    #[test]
    fn cross_thread_adoption_links_the_trace() {
        let rec = Recorder::new(TraceConfig::keep_all());
        let ctx = {
            let _root = rec.start_root("request");
            let ctx = rec.current_ctx().expect("trace active");
            let rec2 = Arc::clone(&rec);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _seg = rec2.adopt(ctx, "worker");
                    let _s = rec2.child_span("subtask");
                });
            });
            ctx
        };
        let snap = rec.snapshot();
        assert_eq!(snap.traces.len(), 2);
        let adopted = snap.traces.iter().find(|t| t.adopted).expect("adopted segment");
        assert_eq!(adopted.trace, ctx.trace);
        assert_eq!(adopted.events[0].parent, ctx.span);
        assert_eq!(snap.stats.adopted_segments, 1);
    }

    #[test]
    fn lifecycle_only_for_kept_traces() {
        let rec = Recorder::new(TraceConfig::keep_all());
        let trace_id = {
            let _root = rec.start_root("request");
            rec.current_ctx().expect("active").trace
        };
        rec.lifecycle(trace_id, "picked_up", AttrList::new().with("sim_t_s", 1.0));
        rec.lifecycle(9_999_999, "picked_up", AttrList::new()); // unknown trace
        let snap = rec.snapshot();
        assert_eq!(snap.lifecycle.len(), 1);
        assert_eq!(snap.lifecycle[0].trace, trace_id);
    }

    #[test]
    fn attr_list_caps_at_max() {
        let mut a = AttrList::new();
        for i in 0..10u64 {
            a.push("k", i);
        }
        assert_eq!(a.len(), MAX_ATTRS);
    }
}
