//! Micro-benchmark of the flight recorder's per-span cost.
//!
//! Three measurements frame the overhead story the design promises
//! (DESIGN.md §5c):
//!
//! - `span_disabled` — `xar_obs::trace::span()` with the global
//!   recorder off. This is the cost every instrumented hot path pays in
//!   production when tracing is not requested: one relaxed atomic load
//!   and a branch. It must stay within a small multiple of
//!   `empty_loop`.
//! - `empty_loop` — the `black_box` floor, for reference.
//! - `request_enabled` — a full root + two children + attrs against a
//!   private enabled recorder with default tail sampling, i.e. the cost
//!   of an actively traced request (buffering into the thread-local,
//!   verdict + publish on drop).
//!
//! The companion integration test (`crates/obs/tests/overhead.rs`)
//! asserts the disabled path allocates nothing; this harness puts
//! numbers on the same claim.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use xar_obs::trace::Recorder;
use xar_obs::TraceConfig;

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");

    // The global recorder starts disabled; nothing here enables it.
    assert!(!xar_obs::trace::recorder().enabled());
    group.bench_function("span_disabled", |b| {
        b.iter(|| std::hint::black_box(xar_obs::trace::span("bench")))
    });

    group.bench_function("empty_loop", |b| b.iter(|| std::hint::black_box(0u64)));

    // Enabled path: private recorder, default sampling (so most traces
    // are discarded at the verdict — the steady-state trace cost).
    let rec: Arc<Recorder> = Recorder::new(TraceConfig::default());
    group.bench_function("request_enabled", |b| {
        b.iter(|| {
            let mut root = rec.start_root("request");
            root.attr("k", 5u64);
            {
                let mut s = rec.child_span("search");
                s.attr("candidates", 7u64);
            }
            {
                let _s = rec.child_span("book");
            }
            std::hint::black_box(root)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
