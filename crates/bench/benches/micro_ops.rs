//! Criterion micro-benchmarks of the four runtime operations (search /
//! create / book / track) and the shortest-path engines they rest on.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use xar_bench::BenchCity;
use xar_core::{EngineConfig, RideOffer, RideRequest, XarEngine};
use xar_roadnet::{NodeId, ShortestPaths};
use xar_workload::{generate_trips, TripGenConfig};

fn setup() -> (BenchCity, Arc<xar_discretize::RegionIndex>) {
    let city = BenchCity::sized(40, 40);
    let region = city.region_delta(250.0);
    (city, region)
}

/// An engine pre-loaded with `n` cross-town rides.
fn loaded_engine(city: &BenchCity, region: &Arc<xar_discretize::RegionIndex>, n: usize) -> XarEngine {
    let mut eng = XarEngine::new(Arc::clone(region), EngineConfig::default());
    let trips = generate_trips(&city.graph, &TripGenConfig { count: n, ..Default::default() });
    for t in &trips {
        let _ = eng.create_ride(&RideOffer {
            source: t.pickup,
            destination: t.dropoff,
            departure_s: t.pickup_s,
            seats: 3,
            detour_limit_m: 4_000.0, driver: None, via: Vec::new(),
        });
    }
    eng
}

fn bench_ops(c: &mut Criterion) {
    let (city, region) = setup();
    let eng = loaded_engine(&city, &region, 1_000);
    let trips = generate_trips(&city.graph, &TripGenConfig { count: 512, seed: 99, ..Default::default() });

    let mut group = c.benchmark_group("xar_ops");

    group.bench_function("search_all_matches", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let t = &trips[i % trips.len()];
            i += 1;
            let req = RideRequest {
                source: t.pickup,
                destination: t.dropoff,
                window_start_s: t.pickup_s,
                window_end_s: t.pickup_s + 1_200.0,
                walk_limit_m: 800.0,
            };
            std::hint::black_box(eng.search(&req, usize::MAX).unwrap_or_default())
        })
    });

    group.bench_function("create_ride", |b| {
        b.iter_batched(
            || XarEngine::new(Arc::clone(&region), EngineConfig::default()),
            |mut fresh| {
                let t = &trips[0];
                let offer = RideOffer {
                    source: t.pickup,
                    destination: t.dropoff,
                    departure_s: t.pickup_s,
                    seats: 3,
                    detour_limit_m: 4_000.0, driver: None, via: Vec::new(),
                };
                std::hint::black_box(fresh.create_ride(&offer).ok())
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("book_first_match", |b| {
        b.iter_batched(
            || {
                let eng = loaded_engine(&city, &region, 200);
                let t = trips
                    .iter()
                    .find_map(|t| {
                        let req = RideRequest {
                            source: t.pickup,
                            destination: t.dropoff,
                            window_start_s: t.pickup_s,
                            window_end_s: t.pickup_s + 1_200.0,
                            walk_limit_m: 800.0,
                        };
                        eng.search(&req, 1).ok().and_then(|m| m.first().copied())
                    })
                    .expect("some trip matches in a 200-ride pool");
                (eng, t)
            },
            |(mut eng, m)| std::hint::black_box(eng.book(&m).ok()),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("track_all_600s", |b| {
        b.iter_batched(
            || loaded_engine(&city, &region, 200),
            |mut eng| {
                eng.track_all(9.0 * 3600.0);
                std::hint::black_box(eng.ride_count())
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();

    let mut sp_group = c.benchmark_group("shortest_path");
    let g = &city.graph;
    let n = g.node_count() as u32;
    sp_group.bench_function("dijkstra_cross_city", |b| {
        let sp = ShortestPaths::driving(g);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(97);
            std::hint::black_box(sp.cost(NodeId(i % n), NodeId((i * 31 + 7) % n)))
        })
    });
    sp_group.bench_function("astar_cross_city", |b| {
        let sp = ShortestPaths::driving(g);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(97);
            std::hint::black_box(sp.astar(NodeId(i % n), NodeId((i * 31 + 7) % n)).map(|p| p.dist_m))
        })
    });
    sp_group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ops
}
criterion_main!(benches);
