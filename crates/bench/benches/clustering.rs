//! Criterion benchmarks of the pre-processing algorithms: the landmark
//! metric, GREEDY k-center, and GREEDYSEARCH.

use criterion::{criterion_group, criterion_main, Criterion};
use xar_bench::BenchCity;
use xar_discretize::greedy_search::{cluster_with_k, greedy_search};
use xar_discretize::kcenter::greedy_k_center;
use xar_discretize::landmarks::filter_landmarks;
use xar_discretize::LandmarkMetric;

fn bench_clustering(c: &mut Criterion) {
    let city = BenchCity::sized(40, 40);
    let landmarks = filter_landmarks(&city.graph, &city.pois, 220.0);
    let metric = LandmarkMetric::compute(&city.graph, &landmarks);
    let n = landmarks.len();

    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);

    group.bench_function(format!("landmark_metric_n{n}"), |b| {
        b.iter(|| std::hint::black_box(LandmarkMetric::compute(&city.graph, &landmarks).len()))
    });

    group.bench_function(format!("greedy_kcenter_k32_n{n}"), |b| {
        b.iter(|| std::hint::black_box(greedy_k_center(&metric, 32).radius))
    });

    group.bench_function(format!("greedy_search_delta250_n{n}"), |b| {
        b.iter(|| std::hint::black_box(greedy_search(&metric, 250.0).clustering.k))
    });

    group.bench_function(format!("cluster_with_k64_n{n}"), |b| {
        b.iter(|| std::hint::black_box(cluster_with_k(&metric, 64).radius))
    });

    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
