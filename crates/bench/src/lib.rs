//! Shared fixtures and reporting helpers for the figure-regeneration
//! harnesses.
//!
//! Every table and figure of the paper's evaluation (§X) has a binary
//! in `src/bin/`:
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig3a_detour_quality` | Fig. 3a — detour-error CDF vs ε |
//! | `fig3_tradeoff` | Fig. 3b/3c/3d — clusters vs ε, index size, search time |
//! | `fig4_vs_tshare` | Fig. 4a/4b/4c — search/create/book percentiles vs T-Share |
//! | `fig5a_topk` | Fig. 5a — search time vs k (haversine mode) |
//! | `fig5b_look_to_book` | Fig. 5b — total time vs look-to-book ratio |
//! | `fig6_modes` | Fig. 6 — Taxi / RS / PT / RS+PT quality |
//! | `ablation_index` | extra — value of the reachable-cluster index |
//!
//! All binaries accept `--scale <f64>` (default honours
//! `XAR_BENCH_SCALE`, then 1.0) multiplying the workload sizes, so CI
//! can smoke-run them cheaply while `--scale 10` approaches the paper's
//! volumes.

use std::sync::Arc;

use xar_core::{EngineConfig, XarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, Poi, PoiConfig, RoadGraph};
use xar_workload::{generate_trips, Trip, TripGenConfig};

/// Standard benchmark fixture: city + POIs (+ lazily built regions).
pub struct BenchCity {
    /// The road network.
    pub graph: Arc<RoadGraph>,
    /// Sampled POIs (landmark source).
    pub pois: Vec<Poi>,
}

impl BenchCity {
    /// The standard benchmark city: a 70x70-block Manhattan lattice
    /// (~7 km on a side, ≈ 4 900 intersections) — big enough that the
    /// index effects the paper measures are visible, small enough to
    /// build in seconds.
    pub fn standard() -> Self {
        Self::sized(70, 70)
    }

    /// A custom-size city.
    pub fn sized(rows: usize, cols: usize) -> Self {
        let graph = Arc::new(CityConfig::manhattan(rows, cols, 0xC17).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: rows * cols / 2, ..Default::default() });
        Self { graph, pois }
    }

    /// Build a region index with the paper's default guarantee
    /// (δ = 250 m ⇒ ε ≤ 1 km).
    pub fn region_delta(&self, delta_m: f64) -> Arc<RegionIndex> {
        Arc::new(RegionIndex::build(
            Arc::clone(&self.graph),
            &self.pois,
            RegionConfig {
                landmark_separation_m: 220.0,
                cluster_goal: ClusterGoal::Delta(delta_m),
                max_walk_m: 1_000.0,
                ..Default::default()
            },
        ))
    }

    /// Build a region index with a fixed cluster count (the Figure 3
    /// sweeps).
    pub fn region_clusters(&self, c: usize) -> Arc<RegionIndex> {
        Arc::new(RegionIndex::build(
            Arc::clone(&self.graph),
            &self.pois,
            RegionConfig {
                landmark_separation_m: 220.0,
                cluster_goal: ClusterGoal::FixedCount(c),
                max_walk_m: 1_000.0,
                ..Default::default()
            },
        ))
    }

    /// Fresh XAR engine over a region.
    pub fn xar(&self, region: Arc<RegionIndex>) -> XarEngine {
        XarEngine::new(region, EngineConfig::default())
    }

    /// A day of trips, scaled.
    pub fn trips(&self, base_count: usize, scale: f64) -> Vec<Trip> {
        let count = ((base_count as f64 * scale) as usize).max(50);
        generate_trips(&self.graph, &TripGenConfig { count, ..Default::default() })
    }
}

/// Parse `--trace-out FILE` / `--trace-slow-ms F` / `--trace-sample P`
/// from the CLI (fallbacks: `XAR_TRACE_OUT` / `XAR_TRACE_SLOW_MS` /
/// `XAR_TRACE_SAMPLE`), configure and enable the global flight
/// recorder, and return the output path. With no path anywhere the
/// recorder stays disabled and `None` is returned — harnesses pay only
/// the one-branch disabled check.
pub fn trace_setup() -> Option<String> {
    fn flag(args: &[String], name: &str) -> Option<String> {
        let prefix = format!("{name}=");
        let mut found = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == name {
                found = it.next().cloned();
            } else if let Some(v) = a.strip_prefix(&prefix) {
                found = Some(v.to_string());
            }
        }
        found
    }
    fn parsed<T: std::str::FromStr>(cli: Option<String>, env: &str) -> Option<T> {
        cli.or_else(|| std::env::var(env).ok()).and_then(|v| v.parse().ok())
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let out =
        flag(&args, "--trace-out").or_else(|| std::env::var("XAR_TRACE_OUT").ok())?;
    let slow_ms: f64 = parsed(flag(&args, "--trace-slow-ms"), "XAR_TRACE_SLOW_MS").unwrap_or(1.0);
    let sample: f64 =
        parsed(flag(&args, "--trace-sample"), "XAR_TRACE_SAMPLE").unwrap_or(0.01);
    let rec = xar_obs::trace::recorder();
    rec.configure(xar_obs::TraceConfig {
        slow_threshold_ns: (slow_ms * 1e6).max(0.0) as u64,
        sample_per_mille: (sample.clamp(0.0, 1.0) * 1000.0).round() as u32,
        ..Default::default()
    });
    rec.set_enabled(true);
    Some(out)
}

/// Counterpart of [`trace_setup`]: disable the recorder and write its
/// Chrome trace-event export to the returned path (no-op on `None`).
pub fn trace_finish(out: Option<String>) {
    let Some(path) = out else { return };
    let rec = xar_obs::trace::recorder();
    rec.set_enabled(false);
    let json = xar_obs::chrome::export_chrome(&rec.snapshot());
    match std::fs::write(&path, json) {
        Ok(()) => {
            let st = rec.stats();
            eprintln!(
                "trace: {path} ({} of {} traces kept, {} events dropped)",
                st.kept_traces, st.started_traces, st.dropped_events
            );
        }
        Err(e) => eprintln!("trace: cannot write {path}: {e}"),
    }
}

/// Parse `--scale <f>` from the CLI (fallback: `XAR_BENCH_SCALE`, then
/// 1.0).
pub fn scale_arg() -> f64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix("--scale=").and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    std::env::var("XAR_BENCH_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0)
}

/// Print a Markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a Markdown-style table header (with separator line).
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Format seconds as adaptive ms/µs text.
pub fn fmt_time_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Format bytes as adaptive KiB/MiB text.
pub fn fmt_bytes(b: usize) -> String {
    const MB: f64 = 1024.0 * 1024.0;
    let b = b as f64;
    if b >= MB {
        format!("{:.1} MiB", b / MB)
    } else {
        format!("{:.1} KiB", b / 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_time_s(2.5), "2.50 s");
        assert_eq!(fmt_time_s(0.0021), "2.10 ms");
        assert_eq!(fmt_time_s(0.0000005), "0.5 µs");
        assert_eq!(fmt_bytes(512), "0.5 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn fixture_builds() {
        let city = BenchCity::sized(15, 15);
        let region = city.region_delta(200.0);
        assert!(region.cluster_count() >= 1);
        let trips = city.trips(100, 1.0);
        assert_eq!(trips.len(), 100);
    }
}
