//! Figures 4a, 4b, 4c — XAR vs T-Share on time taken to search,
//! create and book rides, as percentile curves over a shared workload.
//!
//! Paper setup: 20 000 rides / 100 000 requests from the 6am–12pm
//! slice, T-Share on a 1 km grid with the 80-cell (~4 km detour) search
//! cap, matching modified to return *all* matches. We run the same
//! protocol at a configurable scale and print the percentile rows of
//! all three sub-figures.

use std::sync::Arc;

use xar_bench::{fmt_time_s, header, row, scale_arg, BenchCity};
use xar_tshare::{TShareConfig, TShareEngine};
use xar_workload::{
    percentile_ns, run_simulation, SimConfig, SimReport, TShareBackend, XarBackend,
};

fn print_percentiles(op: &str, xar: &[u64], tshare: &[u64]) {
    println!("\n## Fig 4{} — {op} time percentiles\n", match op {
        "search" => 'a',
        "create" => 'b',
        _ => 'c',
    });
    header(&["percentile", "XAR", "T-Share", "T-Share / XAR"]);
    for p in [50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
        let x = percentile_ns(xar, p) / 1e9;
        let t = percentile_ns(tshare, p) / 1e9;
        let ratio = if x > 0.0 { t / x } else { f64::NAN };
        row(&[
            format!("p{p}"),
            fmt_time_s(x),
            fmt_time_s(t),
            format!("{ratio:.1}x"),
        ]);
    }
}

fn main() {
    let scale = scale_arg();
    println!("# Figure 4 — XAR vs T-Share: search / create / book (scale {scale})\n");
    let city = BenchCity::standard();
    let trips_all = city.trips(20_000, scale);
    let trips = xar_workload::trips::time_slice(&trips_all, 6.0 * 3600.0, 12.0 * 3600.0);
    println!("workload: {} requests (6am-12pm slice of {})\n", trips.len(), trips_all.len());

    let cfg = SimConfig::default();

    // XAR.
    let region = city.region_delta(250.0);
    println!(
        "XAR region: {} clusters, eps = {:.0} m",
        region.cluster_count(),
        region.epsilon_m()
    );
    let mut xar = XarBackend::new(city.xar(region));
    let rx: SimReport = run_simulation(&mut xar, &trips, &cfg);

    // T-Share: 1 km grid ("equivalent to the cluster size of XAR"),
    // 80-cell cap, real shortest paths.
    let ts_cfg = TShareConfig { grid_cell_m: 1_000.0, max_search_cells: 80, ..Default::default() };
    let mut tshare = TShareBackend::new(TShareEngine::new(Arc::clone(&city.graph), ts_cfg));
    let rt: SimReport = run_simulation(&mut tshare, &trips, &cfg);

    println!(
        "\noutcomes: XAR booked {} / created {}; T-Share booked {} / created {}",
        rx.booked, rx.created, rt.booked, rt.created
    );

    print_percentiles("search", &rx.search_ns, &rt.search_ns);
    print_percentiles("create", &rx.create_ns, &rt.create_ns);
    print_percentiles("book", &rx.book_ns, &rt.book_ns);

    println!(
        "\nshape check: XAR search is orders of magnitude faster at high percentiles (4a); \
         T-Share create/book are faster but within the same order (4b, 4c)."
    );
    println!(
        "totals: XAR search {} vs T-Share search {}; XAR create {} vs T-Share create {}; \
         XAR book {} vs T-Share book {}",
        fmt_time_s(rx.total_search_s()),
        fmt_time_s(rt.total_search_s()),
        fmt_time_s(rx.total_create_s()),
        fmt_time_s(rt.total_create_s()),
        fmt_time_s(rx.total_book_s()),
        fmt_time_s(rt.total_book_s()),
    );
}
