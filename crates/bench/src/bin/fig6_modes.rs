//! Figure 6 — comparing four transport modes on the same request set:
//! Taxi, Ride Sharing (RS), Public Transport (PT), and Ride Sharing +
//! Public Transport (RS+PT, aider mode).
//!
//! Metrics per mode: average end-to-end travel time, walking time,
//! waiting time, and the number of cars needed to serve the requests.
//! Mode protocols:
//!
//! * **Taxi** — every trip is an individual car driving the shortest
//!   route (metrics read straight off the routing engine, as the paper
//!   reads them "trivially from the data set").
//! * **RS** — the §X.A.2 ride-share simulation on XAR: booked riders
//!   walk to the pick-up landmark, wait for the ride, ride (with the
//!   shared detour), walk from the drop-off; unmatched riders drive
//!   (and offer their seats). Cars = rides created.
//! * **PT** — every trip planned on the transit network.
//! * **RS+PT** — aider mode (§IX.A): PT plans whose individual legs
//!   walk > 1 km or wait > 10 min are repaired with shared rides from
//!   the concurrently running RS pool; commuters whose plan stays
//!   infeasible drive.

use xar_bench::{header, row, scale_arg, BenchCity};
use xar_core::{EngineConfig, RideOffer, RideRequest, XarEngine};
use xar_mmtp::{aid_plan, AiderConfig, ModeQuality};
use xar_roadnet::{ShortestPaths, WALK_SPEED_MPS};
use xar_transit::{generate::generate_transit, TransitGenConfig, TransitRouter, WalkParams};
use xar_workload::Trip;

const WALK_LIMIT_M: f64 = 800.0;
const WINDOW_S: f64 = 1_200.0;
const DETOUR_M: f64 = 4_000.0;

fn minutes(s: f64) -> String {
    format!("{:.1} min", s / 60.0)
}

/// RS protocol: search → book best → else create. Returns quality +
/// cars. Also returns the populated engine when `keep_engine`.
fn run_rs(city: &BenchCity, trips: &[Trip]) -> (ModeQuality, usize) {
    let region = city.region_delta(250.0);
    let mut eng = XarEngine::new(region, EngineConfig::default());
    let sp = ShortestPaths::driving_time(&city.graph);
    let mut q = ModeQuality::default();
    let mut cars = 0usize;
    for trip in trips {
        eng.track_all(trip.pickup_s);
        let req = RideRequest {
            source: trip.pickup,
            destination: trip.dropoff,
            window_start_s: trip.pickup_s,
            window_end_s: trip.pickup_s + WINDOW_S,
            walk_limit_m: WALK_LIMIT_M,
        };
        let booked = eng
            .search(&req, usize::MAX)
            .ok()
            .and_then(|ms| ms.into_iter().find_map(|m| eng.book(&m).ok().map(|o| (m, o))));
        if let Some((m, out)) = booked {
            let walk_in = m.walk_pickup_m / WALK_SPEED_MPS;
            let walk_out = m.walk_dropoff_m / WALK_SPEED_MPS;
            let arrive_at_pickup = trip.pickup_s + walk_in;
            let wait = (out.pickup_eta_s - arrive_at_pickup).max(0.0);
            let travel = (out.dropoff_eta_s - trip.pickup_s).max(0.0) + walk_out;
            q.trips += 1;
            q.travel_time_s += travel;
            q.walk_time_s += walk_in + walk_out;
            q.wait_time_s += wait;
        } else {
            // Unmatched: drive own car and offer the seats.
            let offer = RideOffer {
                source: trip.pickup,
                destination: trip.dropoff,
                departure_s: trip.pickup_s,
                seats: 3,
                detour_limit_m: DETOUR_M, driver: None, via: Vec::new(),
            };
            if eng.create_ride(&offer).is_ok() {
                cars += 1;
                let src = eng.region().snap_exact(&trip.pickup);
                let dst = eng.region().snap_exact(&trip.dropoff);
                let drive = sp.path(src, dst).map_or(0.0, |p| p.time_s);
                q.trips += 1;
                q.travel_time_s += drive;
            }
        }
    }
    q.cars_used = cars;
    (q, cars)
}

fn main() {
    let scale = scale_arg();
    println!("# Figure 6 — Taxi vs RS vs PT vs RS+PT (scale {scale})\n");
    let city = BenchCity::standard();
    let trips = city.trips(4_000, scale);
    println!("workload: {} requests\n", trips.len());

    let sp = ShortestPaths::driving_time(&city.graph);
    let net = generate_transit(&city.graph, &TransitGenConfig::default());
    let router = TransitRouter::new(&city.graph, &net, WalkParams::default());

    // ---- Taxi ----
    let locator = xar_roadnet::NodeLocator::new(&city.graph, 250.0);
    let mut taxi = ModeQuality::default();
    for trip in &trips {
        let src = locator.nearest(&city.graph, &trip.pickup).0;
        let dst = locator.nearest(&city.graph, &trip.dropoff).0;
        if let Some(p) = sp.path(src, dst) {
            taxi.trips += 1;
            taxi.travel_time_s += p.time_s;
        }
    }
    taxi.cars_used = taxi.trips;

    // ---- RS ----
    let (rs, rs_cars) = run_rs(&city, &trips);

    // ---- PT ----
    let mut pt = ModeQuality::default();
    for trip in &trips {
        if let Some(plan) = router.plan(&trip.pickup, &trip.dropoff, trip.pickup_s) {
            pt.add_plan(&plan);
        }
    }

    // ---- RS+PT (aider) ----
    let region = city.region_delta(250.0);
    let mut eng = XarEngine::new(region, EngineConfig::default());
    let aider_cfg = AiderConfig {
        max_leg_walk_m: 1_000.0,
        max_leg_wait_s: 600.0,
        ride_walk_limit_m: WALK_LIMIT_M,
        window_s: WINDOW_S,
        book: true,
        max_replacements: 3,
    };
    let mut rspt = ModeQuality::default();
    let mut rspt_cars = 0usize;
    for trip in &trips {
        eng.track_all(trip.pickup_s);
        let base = router.plan(&trip.pickup, &trip.dropoff, trip.pickup_s);
        let plan = base.map(|b| aid_plan(&b, trip.dropoff, &net, &router, &mut eng, &aider_cfg));
        let still_bad = plan
            .as_ref()
            .map(|a| !a.plan.infeasible_legs(aider_cfg.max_leg_walk_m, aider_cfg.max_leg_wait_s).is_empty())
            .unwrap_or(true);
        if let (Some(aided), false) = (&plan, still_bad) {
            rspt.add_plan(&aided.plan);
        } else {
            // Plan stayed infeasible: the commuter drives and offers
            // seats to the RS+PT pool.
            let offer = RideOffer {
                source: trip.pickup,
                destination: trip.dropoff,
                departure_s: trip.pickup_s,
                seats: 3,
                detour_limit_m: DETOUR_M, driver: None, via: Vec::new(),
            };
            if eng.create_ride(&offer).is_ok() {
                rspt_cars += 1;
                let src = eng.region().snap_exact(&trip.pickup);
                let dst = eng.region().snap_exact(&trip.dropoff);
                let drive = sp.path(src, dst).map_or(0.0, |p| p.time_s);
                rspt.trips += 1;
                rspt.travel_time_s += drive;
            }
        }
    }
    rspt.cars_used = rspt_cars;

    header(&["mode", "trips", "avg travel", "avg walk", "avg wait", "cars", "cars vs taxi"]);
    for (name, q) in [("Taxi", &taxi), ("RS", &rs), ("PT", &pt), ("RS+PT", &rspt)] {
        row(&[
            name.to_string(),
            q.trips.to_string(),
            minutes(q.avg_travel_time_s()),
            minutes(q.avg_walk_time_s()),
            minutes(q.avg_wait_time_s()),
            q.cars_used.to_string(),
            format!("{:.0}%", q.cars_used as f64 / taxi.cars_used.max(1) as f64 * 100.0),
        ]);
    }

    println!(
        "\nshape check (paper): taxi best on time but one car per trip; RS ≈ +30% travel, \
         −64% cars; RS+PT beats PT on walk/travel and uses ~half the cars of RS."
    );
    println!(
        "measured: RS travel/taxi = {:.2}, RS cars/taxi = {:.2}, RS+PT walk/PT = {:.2}, \
         RS+PT travel/PT = {:.2}, RS+PT cars/RS = {:.2}",
        rs.avg_travel_time_s() / taxi.avg_travel_time_s().max(1e-9),
        rs_cars as f64 / taxi.cars_used.max(1) as f64,
        rspt.avg_walk_time_s() / pt.avg_walk_time_s().max(1e-9),
        rspt.avg_travel_time_s() / pt.avg_travel_time_s().max(1e-9),
        rspt_cars as f64 / rs_cars.max(1) as f64,
    );
}
