//! Figure 5a — search time vs the number of requested matches `k`,
//! with T-Share's shortest paths replaced by the haversine formula.
//!
//! The paper's point: even with "negligible constant time" distance
//! computation, T-Share's search time grows linearly in `k` while XAR
//! is flat — "higher search time of T-Share is not just because of
//! shortest path calculation, but also due to the way rides are
//! indexed".
//!
//! Protocol: both systems are loaded with the *same frozen pool* of
//! ride offers (no bookings, so the state is identical across all `k`),
//! then the same request set is searched at each `k`. Per-query
//! latencies are recorded into an `xar-obs` registry (one fresh
//! registry per `k`, so the distributions don't mix), and the table
//! reports the registry's p50/p99 instead of a single hand-rolled mean.

use std::sync::Arc;
use std::time::Instant;

use xar_bench::{fmt_time_s, header, row, scale_arg, trace_finish, trace_setup, BenchCity};
use xar_core::{RideOffer, RideRequest};
use xar_obs::Registry;
use xar_tshare::engine::TShareRequest;
use xar_tshare::{DistanceMode, TShareConfig, TShareEngine};

fn main() {
    let scale = scale_arg();
    let trace = trace_setup();
    println!("# Figure 5a — search time vs k (T-Share in haversine mode, scale {scale})\n");
    println!("protocol: frozen 7-9am ride pool, identical for every k; p50/p99 from registry histograms\n");
    let city = BenchCity::standard();
    // A realistic live snapshot: the pool is the 7-9 am departure band
    // (tracking would have retired everything older), queried inside
    // the same band.
    // ~1.5k concurrent rides matches what the tracked simulations keep
    // live on this city; an untracked multi-hour dump would overstate
    // per-cluster density far beyond the paper's setup.
    let offers = xar_workload::trips::time_slice(
        &city.trips(5_000, scale),
        7.0 * 3600.0,
        9.0 * 3600.0,
    );
    let queries: Vec<_> = xar_workload::trips::time_slice(
        &city.trips(6_000, scale),
        7.5 * 3600.0,
        8.5 * 3600.0,
    )
    .into_iter()
    .take(2_000)
    .collect();

    // Frozen XAR pool.
    let region = city.region_delta(250.0);
    let mut xar = city.xar(Arc::clone(&region));
    let mut created = 0usize;
    for t in &offers {
        created += usize::from(
            xar.create_ride(&RideOffer::simple(t.pickup, t.dropoff, t.pickup_s, 3, 2_000.0)).is_ok(),
        );
    }

    // Frozen T-Share pool (haversine mode).
    // Detour caps scaled to the city: the paper's 4 km on NYC is
    // proportionally ~2 km on this 7 km test region.
    let ts_cfg = TShareConfig {
        grid_cell_m: 1_000.0,
        max_search_cells: 80,
        max_detour_m: 2_000.0,
        distance_mode: DistanceMode::Haversine,
        ..Default::default()
    };
    let mut tshare = TShareEngine::new(Arc::clone(&city.graph), ts_cfg);
    for t in &offers {
        tshare.create_taxi(t.pickup, t.dropoff, t.pickup_s, 3);
    }
    println!("frozen pool: {created} rides; {} queries per k\n", queries.len());

    header(&[
        "k",
        "XAR p50",
        "XAR p99",
        "T-Share p50",
        "T-Share p99",
        "T-Share / XAR (mean)",
        "avg matches (T-Share)",
    ]);
    let mut series = Vec::new();
    for k in [1usize, 2, 5, 10, 15, 20, 25] {
        // Fresh registry per k so the per-k latency distributions stay
        // separate.
        let reg = Registry::new();
        let x_hist = reg.histogram("fig5a.xar_search_ns");
        let t_hist = reg.histogram("fig5a.tshare_search_ns");

        // XAR.
        let mut x_matches = 0usize;
        for q in &queries {
            let req = RideRequest {
                source: q.pickup,
                destination: q.dropoff,
                window_start_s: q.pickup_s,
                window_end_s: q.pickup_s + 1_200.0,
                walk_limit_m: 800.0,
            };
            let mut troot = xar_obs::trace::root("request");
            troot.attr("system", "xar");
            troot.attr("k", k as u64);
            let t0 = Instant::now();
            let m = xar.search(&req, k);
            x_hist.record(t0.elapsed().as_nanos() as u64);
            x_matches += m.map_or(0, |m| m.len());
        }

        // T-Share.
        let mut t_matches = 0usize;
        for q in &queries {
            let req = TShareRequest {
                pickup: q.pickup,
                dropoff: q.dropoff,
                window_start_s: q.pickup_s,
                window_end_s: q.pickup_s + 1_200.0,
            };
            let mut troot = xar_obs::trace::root("request");
            troot.attr("system", "tshare");
            troot.attr("k", k as u64);
            let t0 = Instant::now();
            let m = tshare.search(&req, k);
            t_hist.record(t0.elapsed().as_nanos() as u64);
            t_matches += m.len();
        }

        let xs = x_hist.snapshot();
        let ts = t_hist.snapshot();
        series.push((k, xs.mean, ts.mean));
        row(&[
            k.to_string(),
            fmt_time_s(xs.p50 as f64 / 1e9),
            fmt_time_s(xs.p99 as f64 / 1e9),
            fmt_time_s(ts.p50 as f64 / 1e9),
            fmt_time_s(ts.p99 as f64 / 1e9),
            format!("{:.1}x", ts.mean / xs.mean.max(1e-3)),
            format!("{:.1}", t_matches as f64 / queries.len() as f64),
        ]);
        let _ = x_matches;
    }

    let (_, x1, t1) = series[0];
    let (_, xk, tk) = *series.last().expect("non-empty sweep");
    println!(
        "\nshape check: T-Share k=25 / k=1 = {:.1}x (grows with k); XAR k=25 / k=1 = {:.1}x (flat).",
        tk / t1.max(1e-3),
        xk / x1.max(1e-3)
    );
    trace_finish(trace);
}
