//! Search-path micro-benchmark — `results/BENCH_search.json`.
//!
//! Isolates the lock-free read path: populates one
//! [`xar_core::ShardedXarEngine`] by replaying three quarters of a trip
//! day through the §X.A.2
//! protocol, then measures `search_into` latency percentiles at 1, 2,
//! 4 and 8 searcher threads over the same request set while a paced
//! background writer (fed the held-back quarter) keeps snapshot
//! publication live. Total searches per point are constant, so the
//! points differ only in concurrency (DESIGN.md §5f).
//!
//! On a multi-core host the curve should be flat: searches never block,
//! so added searchers cost nothing until cores run out. On a one-core
//! container the tail picks up scheduler preemption instead — read the
//! curve against the recorded `"cores"` field (EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xar-bench --bin bench_search [-- out.json] [--scale F]
//! ```

use xar_bench::{scale_arg, BenchCity};
use xar_core::EngineConfig;
use xar_workload::searchbench::{populated_engine, request_of, run_search_point};
use xar_workload::{search_curve_json, SearchPoint, SimConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARDS: usize = 8;
const BASE_TRIPS: usize = 4_000;
const BASE_SEARCHES: usize = 20_000;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "results/BENCH_search.json".to_string());
    let scale = scale_arg();

    let city = BenchCity::sized(40, 40);
    let region = city.region_delta(250.0);
    let trips = city.trips(BASE_TRIPS, scale);
    let cfg = SimConfig::default();
    let total_searches = ((BASE_SEARCHES as f64 * scale) as usize).max(500);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Populate on the first three quarters; the rest feeds the writer.
    let split = trips.len() * 3 / 4;
    let reqs: Vec<_> = trips.iter().map(|t| request_of(t, &cfg)).collect();
    eprintln!(
        "bench_search: {} requests, {total_searches} searches/point, \
         {SHARDS} shards, {cores} core(s)",
        reqs.len()
    );

    let mut rides_live = 0usize;
    let mut points: Vec<SearchPoint> = Vec::new();
    for t in THREAD_COUNTS {
        // A fresh engine per point: the background writer mutates state,
        // so reusing one engine would make later points measure a
        // different population.
        let engine =
            populated_engine(&region, &EngineConfig::default(), &trips[..split], &cfg, SHARDS);
        rides_live = engine.ride_count();
        let p = run_search_point(&engine, &reqs, &trips[split..], &cfg, t, total_searches);
        eprintln!(
            "  {} searcher(s): p50 {:.1} µs p99 {:.1} µs ({} searches, {} matches)",
            p.threads,
            p.p50_ns / 1e3,
            p.p99_ns / 1e3,
            p.searches,
            p.matches
        );
        points.push(p);
    }

    let meta = [
        ("rows", 40.0),
        ("cols", 40.0),
        ("trips", trips.len() as f64),
        ("scale", scale),
        ("clusters", region.cluster_count() as f64),
        ("rides_live", rides_live as f64),
        ("shards", SHARDS as f64),
    ];
    let json = search_curve_json(&meta, cores, &points);

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write search curve");
    println!("{json}");
    println!("# written to {out_path}");
}
