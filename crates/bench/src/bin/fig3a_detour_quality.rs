//! Figure 3a — quality of matching rides.
//!
//! The paper's guarantee (§V): "the detour limit of a ride will be
//! exceeded by at most a 4ε additive factor, while we show later
//! empirically, that for 98% of the cases, the detour limit is exceeded
//! by at most an additive ε distance". We run the §X.A.2 simulation
//! over the synthetic taxi day and print:
//!
//! 1. the paper's quantity — realised detour in excess of the ride's
//!    remaining detour *limit* at booking time;
//! 2. a stricter internal measure — realised detour in excess of the
//!    search-time *estimate* (the raw discretization error).

use xar_bench::{header, row, scale_arg, BenchCity};
use xar_workload::{percentile, run_simulation, SimConfig, XarBackend};

fn cdf_table(label: &str, values: &[f64], eps: f64) {
    println!("\n## {label}\n");
    let frac_within = |bound: f64| -> f64 {
        values.iter().filter(|&&e| e <= bound).count() as f64 / values.len() as f64 * 100.0
    };
    header(&["bound", "metres", "% of matches within"]);
    for (name, mult) in
        [("0 (limit held)", 0.0), ("eps/2", 0.5), ("eps", 1.0), ("2 eps", 2.0), ("4 eps (theory)", 4.0)]
    {
        row(&[
            name.to_string(),
            format!("{:.0}", eps * mult),
            format!("{:.2}%", frac_within(eps * mult)),
        ]);
    }
    header(&["percentile", "metres", "in eps units"]);
    for p in [50.0, 90.0, 95.0, 98.0, 99.0, 99.9, 100.0] {
        let v = percentile(values, p);
        row(&[format!("p{p}"), format!("{v:.0}"), format!("{:.2} eps", v / eps)]);
    }
}

fn main() {
    let scale = scale_arg();
    println!("# Figure 3a — detour quality vs epsilon (scale {scale})\n");

    let city = BenchCity::standard();
    let region = city.region_delta(250.0);
    let eps = region.epsilon_m();
    println!(
        "region: {} landmarks, {} clusters, realised epsilon = {:.0} m (guarantee 4*delta = 1000 m)",
        region.landmark_count(),
        region.cluster_count(),
        eps
    );

    let trips = city.trips(35_000, scale);
    let mut backend = XarBackend::new(city.xar(region));
    let report = run_simulation(&mut backend, &trips, &SimConfig::default());
    println!(
        "trips: {}   booked: {}   created: {}   share rate: {:.1}%",
        trips.len(),
        report.booked,
        report.created,
        report.share_rate() * 100.0
    );
    if report.booked == 0 {
        println!("no bookings — nothing to measure (increase --scale)");
        return;
    }

    // (1) The paper's measure.
    let excess = &report.detour_excess_m;
    cdf_table("detour limit excess (paper's Figure 3a quantity)", excess, eps);

    // (2) The stricter internal measure.
    let errors = report.detour_errors_m();
    cdf_table("estimate error: actual - search-time estimate (stricter)", &errors, eps);

    let frac = |v: &[f64], bound: f64| {
        v.iter().filter(|&&e| e <= bound).count() as f64 / v.len() as f64 * 100.0
    };
    println!(
        "\nshape check (limit excess): within eps {:.1}% (paper: 98%), within 2eps {:.1}% \
         (paper: 99.9%), within 4eps {:.1}% (theorem: 100%)",
        frac(excess, eps),
        frac(excess, 2.0 * eps),
        frac(excess, 4.0 * eps),
    );
}
