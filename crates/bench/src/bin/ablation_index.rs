//! Ablation study (beyond the paper's figures): which parts of the XAR
//! index design actually pay for themselves?
//!
//! 1. **Reachable clusters on/off** — §VI indexes each ride into the
//!    clusters it could *detour to*, not just the ones it passes
//!    through. Off ⇒ searches only match rides passing a walkable
//!    cluster directly: recall (share rate) collapses.
//! 2. **Cluster-level vs grid-level indexing** — the core §I claim:
//!    grid-only systems (T-Share) must recover feasibility with
//!    shortest paths at search time. We compare XAR's search cost
//!    against T-Share's on the same workload as a proxy for the
//!    "cluster hierarchy vs flat grid" decision.

use std::sync::Arc;

use xar_bench::{fmt_time_s, header, row, scale_arg, BenchCity};
use xar_core::{EngineConfig, XarEngine};
use xar_tshare::{TShareConfig, TShareEngine};
use xar_workload::{run_simulation, SimConfig, TShareBackend, XarBackend};

fn main() {
    let scale = scale_arg();
    println!("# Ablation — index design choices (scale {scale})\n");
    let city = BenchCity::standard();
    let trips = city.trips(8_000, scale);
    let sim_cfg = SimConfig::default();

    header(&["variant", "share rate", "avg search", "booked", "index entries"]);

    // Full XAR.
    let region = city.region_delta(250.0);
    let mut full = XarBackend::new(XarEngine::new(Arc::clone(&region), EngineConfig::default()));
    let r_full = run_simulation(&mut full, &trips, &sim_cfg);
    row(&[
        "XAR (full)".into(),
        format!("{:.1}%", r_full.share_rate() * 100.0),
        fmt_time_s(r_full.mean_search_ms() / 1e3),
        r_full.booked.to_string(),
        full.engine.index().len().to_string(),
    ]);

    // XAR without reachable clusters.
    let mut no_reach = XarBackend::new(XarEngine::new(
        Arc::clone(&region),
        EngineConfig { index_reachable: false, ..Default::default() },
    ));
    let r_nr = run_simulation(&mut no_reach, &trips, &sim_cfg);
    row(&[
        "XAR (no reachable clusters)".into(),
        format!("{:.1}%", r_nr.share_rate() * 100.0),
        fmt_time_s(r_nr.mean_search_ms() / 1e3),
        r_nr.booked.to_string(),
        no_reach.engine.index().len().to_string(),
    ]);

    // Grid-level baseline (T-Share) for the same workload.
    let ts_cfg = TShareConfig { grid_cell_m: 1_000.0, max_search_cells: 80, ..Default::default() };
    let mut grid = TShareBackend::new(TShareEngine::new(Arc::clone(&city.graph), ts_cfg));
    let r_grid = run_simulation(&mut grid, &trips, &sim_cfg);
    row(&[
        "grid-level index (T-Share)".into(),
        format!("{:.1}%", r_grid.share_rate() * 100.0),
        fmt_time_s(r_grid.mean_search_ms() / 1e3),
        r_grid.booked.to_string(),
        "-".into(),
    ]);

    println!(
        "\nshape check: dropping reachable clusters shrinks the index but costs recall \
         (share rate {:.1}% -> {:.1}%); the grid-level baseline pays ~{:.0}x the search time.",
        r_full.share_rate() * 100.0,
        r_nr.share_rate() * 100.0,
        r_grid.mean_search_ms() / r_full.mean_search_ms().max(1e-9),
    );
}
