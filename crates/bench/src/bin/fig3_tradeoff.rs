//! Figures 3b, 3c, 3d — the performance vs approximation trade-off.
//!
//! * 3b: the number of clusters `C` produced by GREEDYSEARCH as the
//!   target ε changes (inverse relationship);
//! * 3c: the size of the in-memory index as `C` grows (the paper loads
//!   120k offers / 350k requests; we load a scaled stress workload);
//! * 3d: the ride-search time as `C` grows.

use std::time::Instant;

use xar_bench::{fmt_bytes, fmt_time_s, header, row, scale_arg, BenchCity};
use xar_workload::{run_simulation, SimConfig, XarBackend};

fn main() {
    let scale = scale_arg();
    println!("# Figure 3b/3c/3d — performance vs approximation trade-off (scale {scale})\n");
    let city = BenchCity::standard();

    // ---- Figure 3b: epsilon -> cluster count (GREEDYSEARCH) ----
    println!("## Fig 3b — number of clusters as epsilon changes\n");
    header(&["target eps = 4*delta (m)", "delta (m)", "clusters C", "realised eps (m)"]);
    let mut sweep_regions = Vec::new();
    for eps_target in [400.0, 700.0, 1_000.0, 1_600.0, 2_400.0, 4_000.0] {
        let delta = eps_target / 4.0;
        let region = city.region_delta(delta);
        row(&[
            format!("{eps_target:.0}"),
            format!("{delta:.0}"),
            region.cluster_count().to_string(),
            format!("{:.0}", region.epsilon_m()),
        ]);
        sweep_regions.push((eps_target, region));
    }

    // ---- Figures 3c/3d: C -> index size and search time ----
    // The paper fixes cluster counts C = 500..5000 on 16k landmarks;
    // our standard city carries ~1-2k landmarks, so the sweep scales to
    // C = 25..400 while preserving the C / landmarks ratio.
    println!("\n## Fig 3c/3d — index size and search time vs cluster count\n");
    header(&[
        "clusters C",
        "realised eps (m)",
        "index size",
        "region tables",
        "avg search",
        "p95 search",
    ]);
    let trips = city.trips(12_000, scale);
    for c in [25usize, 50, 100, 200, 400] {
        let region = city.region_clusters(c);
        let eps = region.epsilon_m();
        let mut backend = XarBackend::new(city.xar(std::sync::Arc::clone(&region)));
        let t0 = Instant::now();
        let report = run_simulation(&mut backend, &trips, &SimConfig::default());
        let _elapsed = t0.elapsed();
        let mem = backend.engine.heap_bytes();
        let region_mem = region.heap_bytes();
        row(&[
            c.to_string(),
            format!("{eps:.0}"),
            fmt_bytes(mem),
            fmt_bytes(region_mem),
            fmt_time_s(report.mean_search_ms() / 1e3),
            fmt_time_s(xar_workload::percentile_ns(&report.search_ns, 95.0) / 1e9),
        ]);
    }
    println!(
        "\nshape check: C inversely related to eps (3b); index bytes grow superlinearly \
         with C (3c); search time grows with C (3d)."
    );
}
