//! Write-path micro-benchmark — `results/BENCH_write.json`.
//!
//! Isolates the booking write path: for each point a fresh
//! [`xar_core::ShardedXarEngine`] is filled with pure ride creates,
//! then a fixed-size booking storm (search untimed, `book_checked`
//! timed) is replayed twice — once under the default incremental
//! snapshot publication and once with every publish forced down the
//! full-rebuild path. Each point fuses both runs (DESIGN.md §5f).
//!
//! The claim under test: incremental publish cost tracks the *dirty
//! clusters* a booking touches, not the shard's ride count. The sweep
//! holds ride density constant — the city side grows as √mult, so
//! `rides` and `clusters` grow 8× together while the detour-budget-
//! bounded dirty set stays fixed. `publish_p50_ns` should stay
//! flat-ish across the sweep while `full_publish_p50_ns` climbs with
//! the shard. On a one-core container percentiles absorb scheduler
//! preemption — read the curve against the recorded `"cores"` field
//! (EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xar-bench --bin bench_write [-- out.json] [--scale F]
//! ```

use xar_bench::{scale_arg, BenchCity};
use xar_core::EngineConfig;
use xar_workload::{
    generate_trips, run_write_point, write_curve_json, SimConfig, TripGenConfig, WritePoint,
};

/// Population multipliers: each point populates `evens.len() * m /
/// MAX_MULT` rides into a city whose side is `BASE_SIDE * sqrt(m)`, so
/// rides-per-cluster stays constant across the sweep.
const POP_MULTS: [usize; 4] = [1, 2, 4, 8];
const MAX_MULT: usize = 8;
const SHARDS: usize = 8;
const BASE_SIDE: f64 = 40.0;
const BASE_TRIPS: usize = 8_000;
const BASE_STORM: usize = 1_500;
/// Crow-flies trip-length cap, metres. Constant across the sweep: as
/// the city grows, trips (and so ride routes and their cluster
/// fan-out) stay metropolitan-local instead of stretching with the
/// map — otherwise longer routes would grow the dirty set and mask
/// the flat incremental-publish curve the bench demonstrates.
const MAX_TRIP_M: f64 = 2_500.0;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "results/BENCH_write.json".to_string());
    let scale = scale_arg();

    // Tight detour budgets keep each ride's reachable-cluster set — and
    // therefore each booking's dirty set — small relative to the
    // region, which is the regime incremental publication exists for
    // (the default 4 km budget reaches most of the base city, where
    // `publish_shard`'s heuristic correctly prefers full rebuilds).
    let cfg = SimConfig { detour_limit_m: 1_200.0, ..SimConfig::default() };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("bench_write: base side {BASE_SIDE}, {SHARDS} shards, {cores} core(s)");

    let mut points: Vec<WritePoint> = Vec::new();
    let (mut trips_len, mut storm_len_seen) = (0usize, 0usize);
    for m in POP_MULTS {
        let side = (BASE_SIDE * (m as f64).sqrt()).round() as usize;
        let city = BenchCity::sized(side, side);
        let region = city.region_delta(250.0);
        let count = ((BASE_TRIPS as f64 * scale) as usize).max(50);
        let trips = generate_trips(
            &city.graph,
            &TripGenConfig { count, max_trip_m: MAX_TRIP_M, ..Default::default() },
        );
        trips_len = trips.len();

        // Trips are time-sorted, so populations and the storm are drawn
        // by striding — every subset spans the whole day and the
        // storm's request windows always overlap live rides (a
        // head/tail split would book against departed rides only).
        let evens: Vec<_> = trips.iter().step_by(2).copied().collect();
        let odds: Vec<_> = trips.iter().skip(1).step_by(2).copied().collect();
        let storm_len = ((BASE_STORM as f64 * scale) as usize).clamp(50, odds.len());
        let storm: Vec<_> =
            odds.iter().step_by((odds.len() / storm_len).max(1)).copied().collect();
        storm_len_seen = storm.len();
        let populate: Vec<_> = evens.iter().step_by(MAX_MULT / m).copied().collect();

        let p =
            run_write_point(&region, &EngineConfig::default(), &populate, &storm, &cfg, SHARDS, m);
        eprintln!(
            "  {side}x{side} ({} clusters), {} rides: book p50 {:.1} µs | publish p50 {:.1} µs \
             (full {:.1} µs), {:.1} dirty clusters/publish, {} partial",
            p.clusters,
            p.rides,
            p.book_p50_ns / 1e3,
            p.publish_p50_ns / 1e3,
            p.full_publish_p50_ns / 1e3,
            p.dirty_clusters_mean,
            p.partial_publishes
        );
        points.push(p);
    }

    let meta = [
        ("base_side", BASE_SIDE),
        ("trips", trips_len as f64),
        ("storm", storm_len_seen as f64),
        ("scale", scale),
        ("shards", SHARDS as f64),
    ];
    let json = write_curve_json(&meta, cores, &points);

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write write curve");
    println!("{json}");
    println!("# written to {out_path}");
}
