//! Figure 5b — total processing time vs the look-to-book ratio `r`.
//!
//! Each booked request is preceded by `r` search operations (the MMTP
//! integration generates many looks per booking, §IX; the Go-LA data
//! puts the realistic ratio near 480). The paper's result: T-Share
//! wins at r = 1 but degrades much faster — at r = 1000 it takes ~42 s
//! where XAR takes ~1 s.
//!
//! Per-search p50/p99 come from the simulator's `sim.search_ns`
//! histogram in the run's metrics registry (fresh backends per `r`, so
//! each run has its own registry).

use std::sync::Arc;

use xar_bench::{fmt_time_s, header, row, scale_arg, trace_finish, trace_setup, BenchCity};
use xar_tshare::{TShareConfig, TShareEngine};
use xar_workload::{run_simulation, SimConfig, TShareBackend, XarBackend};

fn main() {
    let scale = scale_arg();
    let trace = trace_setup();
    println!("# Figure 5b — total query time vs look-to-book ratio r (scale {scale})\n");
    let city = BenchCity::standard();
    // Few requests: total work is requests * r searches.
    let trips = city.trips(300, scale);

    // Per-search percentiles from the run's `sim.search_ns` histogram.
    let search_pcts = |report: &xar_workload::SimReport| -> (u64, u64) {
        let reg = report.registry.as_ref().expect("simulation attaches a registry");
        let s = reg.histogram("sim.search_ns").snapshot();
        (s.p50, s.p99)
    };

    header(&[
        "r",
        "XAR total",
        "XAR search p50/p99",
        "T-Share total",
        "T-Share search p50/p99",
        "T-Share / XAR",
    ]);
    let mut first_ratio = None;
    let mut last_ratio = None;
    for r in [1usize, 5, 10, 50, 100, 500, 1000] {
        // One booking per request: each look needs a single match
        // (k = 1), so T-Share's expanding search can stop early — its
        // best case, which is what makes it competitive at r = 1.
        let cfg = SimConfig { lookups_per_request: r - 1, k: 1, ..Default::default() };

        let region = city.region_delta(250.0);
        let mut xar = XarBackend::new(city.xar(region));
        let rx = run_simulation(&mut xar, &trips, &cfg);
        let x_total = rx.total_search_s() + rx.total_create_s() + rx.total_book_s();
        let (xp50, xp99) = search_pcts(&rx);

        let ts_cfg =
            TShareConfig { grid_cell_m: 1_000.0, max_search_cells: 80, ..Default::default() };
        let mut ts = TShareBackend::new(TShareEngine::new(Arc::clone(&city.graph), ts_cfg));
        let rt = run_simulation(&mut ts, &trips, &cfg);
        let t_total = rt.total_search_s() + rt.total_create_s() + rt.total_book_s();
        let (tp50, tp99) = search_pcts(&rt);

        let ratio = t_total / x_total.max(1e-12);
        if first_ratio.is_none() {
            first_ratio = Some(ratio);
        }
        last_ratio = Some(ratio);
        row(&[
            r.to_string(),
            fmt_time_s(x_total),
            format!("{}/{}", fmt_time_s(xp50 as f64 / 1e9), fmt_time_s(xp99 as f64 / 1e9)),
            fmt_time_s(t_total),
            format!("{}/{}", fmt_time_s(tp50 as f64 / 1e9), fmt_time_s(tp99 as f64 / 1e9)),
            format!("{ratio:.1}x"),
        ]);
    }
    println!(
        "\nshape check: the T-Share/XAR gap grows with r — {:.1}x at r=1 vs {:.1}x at r=1000 \
         (paper: T-Share faster at r=1, ~40x slower at r=1000).",
        first_ratio.unwrap_or(f64::NAN),
        last_ratio.unwrap_or(f64::NAN)
    );
    trace_finish(trace);
}
