//! Engine scaling curve — `results/BENCH_engine.json`.
//!
//! Replays the same trip day through a fresh
//! [`xar_core::ShardedXarEngine`] at
//! 1, 2, 4, and 8 worker threads and records throughput plus search
//! latency percentiles per point (DESIGN.md §5e). This is the
//! machine-readable counterpart of `xar bench`: CI diffs the curve
//! across commits without scraping stdout.
//!
//! The curve is only meaningful relative to the recorded `"cores"`
//! field — on a single-core container every point above 1 thread
//! measures lock overhead, not parallel speed-up (EXPERIMENTS.md
//! discusses how to read it).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xar-bench --bin bench_engine [-- out.json] [--scale F]
//! ```

use xar_bench::{scale_arg, BenchCity};
use xar_core::EngineConfig;
use xar_workload::{run_scaling_point, scaling_curve_json, ScalingPoint, SimConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARDS: usize = 8;
const BASE_TRIPS: usize = 4_000;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "results/BENCH_engine.json".to_string());
    let scale = scale_arg();

    let city = BenchCity::sized(40, 40);
    let region = city.region_delta(250.0);
    let trips = city.trips(BASE_TRIPS, scale);
    let cfg = SimConfig::default();
    let engine_cfg = EngineConfig::default();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "bench_engine: {} trips over {} clusters, {SHARDS} shards, {cores} core(s)",
        trips.len(),
        region.cluster_count()
    );

    let mut points: Vec<ScalingPoint> = Vec::new();
    for t in THREAD_COUNTS {
        let p = run_scaling_point(&region, &engine_cfg, &trips, &cfg, t, SHARDS);
        eprintln!(
            "  {} thread(s): {:>8.0} req/s, search p50 {:.1} µs p99 {:.1} µs, {} overbooked",
            p.threads,
            p.requests_per_s,
            p.search_p50_ns / 1e3,
            p.search_p99_ns / 1e3,
            p.overbooked_rides
        );
        assert_eq!(p.overbooked_rides, 0, "engine lost seat updates at {t} threads");
        points.push(p);
    }

    let meta = [
        ("rows", 40.0),
        ("cols", 40.0),
        ("trips", trips.len() as f64),
        ("scale", scale),
        ("clusters", region.cluster_count() as f64),
    ];
    let json = scaling_curve_json(&meta, cores, &points);

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write scaling curve");
    println!("{json}");
    println!("# written to {out_path}");
}
