//! Observability-cost baseline — `results/BENCH_obs.json`.
//!
//! Puts machine-readable numbers on the ops-plane costs the design
//! claims are negligible (DESIGN.md §5d): the record path with and
//! without labels, the labeled-handle lookup the hot paths avoid, one
//! window tick over a realistic registry, rendering the Prometheus
//! text document, and a full HTTP scrape of a live `/metrics`.
//!
//! Unlike the figure harnesses this emits JSON, so CI can diff the
//! baseline across commits without scraping stdout. Usage:
//!
//! ```text
//! cargo run --release -p xar-bench --bin bench_obs [-- out.json]
//! ```

use std::hint::black_box;
use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::Instant;

use xar_obs::json::JsonWriter;
use xar_obs::serve::{serve, OpsPlane};
use xar_obs::slo::{SloEngine, SloRule};
use xar_obs::window::{WindowConfig, WindowStore};
use xar_obs::{promtext, Registry};

/// Median ns/op over `reps` timed batches of `iters` calls each.
fn measure(iters: u64, reps: usize, mut f: impl FnMut(u64)) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for i in 0..iters {
            f(i);
        }
        samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[reps / 2]
}

/// A registry shaped like a live simulation: the unlabeled engine
/// families plus the tier/cluster/outcome labeled series, all with
/// recorded traffic so ticks and renders do real work.
fn populated_registry() -> Arc<Registry> {
    let reg = Arc::new(Registry::new());
    for name in
        ["engine.search_ns", "engine.create_ns", "engine.book_ns", "engine.track_ns", "engine.sp_ns"]
    {
        let h = reg.histogram(name);
        for i in 0..256u64 {
            h.record(1_000 + i * 97);
        }
    }
    for tier in ["t1", "t2", "t3"] {
        let h = reg.histogram_with("engine.search_ns", &[("tier", tier)]);
        for i in 0..128u64 {
            h.record(2_000 + i * 131);
        }
    }
    for b in ["b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7"] {
        let h = reg.histogram_with("engine.book_ns", &[("cluster", b)]);
        for i in 0..64u64 {
            h.record(5_000 + i * 211);
        }
        reg.counter_with("engine.bookings", &[("cluster", b)]).add(64);
        reg.gauge_with("engine.cluster_rides", &[("cluster", b)]).set(7);
    }
    for outcome in ["booked", "created", "unservable"] {
        reg.counter_with("sim.requests", &[("outcome", outcome)]).add(100);
    }
    reg.counter("sim.requests_total").add(300);
    reg
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "results/BENCH_obs.json".to_string());
    const ITERS: u64 = 1_000_000;
    const REPS: usize = 7;

    let reg = Registry::new();
    let unlabeled = reg.histogram("bench.record_ns");
    let labeled = reg.histogram_with("bench.record_ns", &[("tier", "t1")]);

    let record_unlabeled_ns =
        measure(ITERS, REPS, |i| unlabeled.record(black_box(1_000 + (i & 0xFFF))));
    let record_labeled_ns =
        measure(ITERS, REPS, |i| labeled.record(black_box(1_000 + (i & 0xFFF))));
    // The per-call interned lookup the pre-resolved handles avoid
    // (order-insensitive match against an existing series; no alloc).
    let labeled_lookup_ns = measure(100_000, REPS, |_| {
        black_box(reg.histogram_with("bench.record_ns", &[("tier", "t1")]));
    });

    let live = populated_registry();
    let window = WindowStore::new(WindowConfig::default());
    let tick_ns = measure(1_000, REPS, |i| {
        // Keep deltas non-empty so every tick diffs and stores.
        live.histogram("engine.search_ns").record(1_000 + i);
        window.tick(&live);
    });
    let render_ns = measure(1_000, REPS, |_| {
        black_box(promtext::render(&live.series()));
    });

    // Full scrape: HTTP round trip against a served plane (localhost),
    // including rolling-window and alert rendering.
    let plane = OpsPlane::new(
        Arc::clone(&live),
        Arc::new(WindowStore::new(WindowConfig { tick_ms: 600_000, capacity: 64 })),
        Arc::new(SloEngine::new(vec![SloRule::parse(
            "name=bench hist=engine.search_ns max_ms=500 target=0.99 fast=10 slow=60",
        )
        .expect("valid rule")])),
    );
    plane.tick();
    let server = serve("127.0.0.1:0", plane.clone()).expect("bind bench server");
    let addr = server.local_addr();
    let mut body_bytes = 0usize;
    let scrape_ns = measure(200, REPS, |_| {
        let mut s = std::net::TcpStream::connect(addr).expect("connect");
        write!(s, "GET /metrics HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).expect("read");
        body_bytes = buf.len();
    });
    drop(server);

    let series_count = live.series().len();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("obs");
    w.key("config");
    w.begin_object();
    w.key("record_iters");
    w.number_u64(ITERS);
    w.key("reps");
    w.number_u64(REPS as u64);
    w.key("registry_series");
    w.number_u64(series_count as u64);
    w.key("scrape_body_bytes");
    w.number_u64(body_bytes as u64);
    w.end_object();
    w.key("results_ns");
    w.begin_object();
    for (k, v) in [
        ("hist_record_unlabeled", record_unlabeled_ns),
        ("hist_record_labeled_handle", record_labeled_ns),
        ("labeled_lookup", labeled_lookup_ns),
        ("window_tick", tick_ns),
        ("promtext_render", render_ns),
        ("metrics_scrape", scrape_ns),
    ] {
        w.key(k);
        w.number_f64((v * 10.0).round() / 10.0);
    }
    w.end_object();
    w.end_object();
    let json = w.finish();

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write baseline");
    println!("{json}");
    println!("# written to {out_path}");
    assert!(
        record_labeled_ns < record_unlabeled_ns * 3.0 + 20.0,
        "labeled handle record should cost the same as unlabeled \
         ({record_labeled_ns:.1} ns vs {record_unlabeled_ns:.1} ns)"
    );
}
