//! Figure 7 — dispatch policies: first-match vs batch-window
//! assignment at 0 / 20 / 50 / 200 ms windows.
//!
//! One standard 20 000-trip day (fig 4's city and region), compressed
//! to ~200 requests/s of simulated time so millisecond windows hold
//! real batches — at the raw synthetic-day rate (~0.23 req/s) every
//! window would be a batch of one and the comparison vacuous. Every
//! policy replays the same trips against a fresh serial engine; the
//! table and `results/BENCH_dispatch.json` compare service rate
//! (pooled fraction — what joint assignment tries to raise), mean
//! realised detour, mean scheduled pick-up wait, and the p99
//! *amortized* dispatch cost (window wall-time / batch size per
//! request; plain p99 search latency for first-match).
//!
//! All runs are single-threaded; the recorded `"cores"` field matters
//! only for comparing the amortized-cost column across machines
//! (EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xar-bench --bin fig7_dispatch [-- out.json] [--scale F]
//! ```

use xar_bench::{header, row, scale_arg, BenchCity};
use xar_workload::{
    run_simulation_with, DispatchSpec, SimConfig, SimReport, Trip, XarBackend,
};

const BASE_TRIPS: usize = 20_000;
/// Simulated seconds the trip day is compressed onto: 20 000 trips
/// over 100 s ≈ 200 req/s, so 20/50/200 ms windows carry ~4/10/40
/// requests.
const COMPRESSED_DAY_S: f64 = 100.0;
const WINDOWS_MS: [u64; 4] = [0, 20, 50, 200];

fn compress(trips: &mut [Trip], span_s: f64) {
    let Some(first) = trips.first().map(|t| t.pickup_s) else { return };
    let last = trips.last().map(|t| t.pickup_s).unwrap_or(first);
    let span = (last - first).max(f64::MIN_POSITIVE);
    for t in trips.iter_mut() {
        t.pickup_s = (t.pickup_s - first) / span * span_s;
    }
}

struct PolicyRun {
    spec: DispatchSpec,
    window_ms: u64,
    report: SimReport,
    wall_s: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "results/BENCH_dispatch.json".to_string());
    let scale = scale_arg();

    println!("# Figure 7 — dispatch: first-match vs batch-window assignment (scale {scale})\n");
    let city = BenchCity::standard();
    let region = city.region_delta(250.0);
    let mut trips = city.trips(BASE_TRIPS, scale);
    compress(&mut trips, COMPRESSED_DAY_S);
    let trips = trips;
    let cfg = SimConfig::default();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "workload: {} trips compressed onto {COMPRESSED_DAY_S} s ({:.0} req/s), {} clusters\n",
        trips.len(),
        trips.len() as f64 / COMPRESSED_DAY_S,
        region.cluster_count(),
    );

    let specs: Vec<DispatchSpec> = std::iter::once(DispatchSpec::First)
        .chain(WINDOWS_MS.iter().map(|&window_ms| DispatchSpec::Batch { window_ms }))
        .collect();
    let mut runs: Vec<PolicyRun> = Vec::new();
    for spec in specs {
        let mut backend = XarBackend::new(city.xar(std::sync::Arc::clone(&region)));
        let mut policy = spec.build(&cfg);
        let t0 = std::time::Instant::now();
        let report = run_simulation_with(&mut backend, &trips, &cfg, policy.as_mut());
        let wall_s = t0.elapsed().as_secs_f64();
        eprintln!(
            "  {:<12} service {:.4}, stale commits {}, swaps {}, {:.1} s wall",
            spec.label(),
            report.service_rate(),
            report.stale_commits,
            report.swaps,
            wall_s,
        );
        let window_ms = match spec {
            DispatchSpec::First => 0,
            DispatchSpec::Batch { window_ms } => window_ms,
        };
        runs.push(PolicyRun { spec, window_ms, report, wall_s });
    }
    let first = &runs[0].report;

    println!("## Fig 7 — dispatch policy quality and amortized cost\n");
    header(&[
        "policy",
        "service rate",
        "vs first",
        "mean detour m",
        "mean wait s",
        "p99 amortized",
        "stale commits",
        "swaps",
    ]);
    for r in &runs {
        let d = r.report.deltas_vs(first);
        row(&[
            r.spec.label(),
            format!("{:.4}", r.report.service_rate()),
            format!("{:.3}x", d.service_rate_x),
            format!("{:.0}", r.report.mean_detour_m()),
            format!("{:.1}", r.report.mean_wait_s()),
            format!("{:.1} µs", r.report.amortized_dispatch_p99_ns() / 1e3),
            format!("{}", r.report.stale_commits),
            format!("{}", r.report.swaps),
        ]);
    }

    // Machine-readable curve for CI diffing.
    let mut w = xar_obs::json::JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("dispatch");
    w.key("cores");
    w.number_u64(cores as u64);
    w.key("trips");
    w.number_u64(trips.len() as u64);
    w.key("compressed_day_s");
    w.number_f64(COMPRESSED_DAY_S);
    w.key("scale");
    w.number_f64(scale);
    w.key("points");
    w.begin_array();
    for r in &runs {
        let d = r.report.deltas_vs(first);
        let mut p = xar_obs::json::JsonWriter::new();
        p.begin_object();
        p.key("policy");
        p.string(&r.spec.label());
        p.key("window_ms");
        p.number_u64(r.window_ms);
        p.key("service_rate");
        p.number_f64(r.report.service_rate());
        p.key("share_rate");
        p.number_f64(r.report.share_rate());
        p.key("booked");
        p.number_u64(r.report.booked);
        p.key("created");
        p.number_u64(r.report.created);
        p.key("unservable");
        p.number_u64(r.report.unservable);
        p.key("stale_commits");
        p.number_u64(r.report.stale_commits);
        p.key("swaps");
        p.number_u64(r.report.swaps);
        p.key("windows");
        p.number_u64(r.report.window_ns.len() as u64);
        p.key("mean_detour_m");
        p.number_f64(r.report.mean_detour_m());
        p.key("mean_wait_s");
        p.number_f64(r.report.mean_wait_s());
        p.key("p99_amortized_ns");
        p.number_f64(r.report.amortized_dispatch_p99_ns());
        p.key("wall_s");
        p.number_f64(r.wall_s);
        p.key("deltas_vs_first");
        p.raw(&d.to_json());
        p.end_object();
        w.raw(&p.finish());
    }
    w.end_array();
    w.end_object();
    let json = w.finish();

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write dispatch curve");
    println!("\n# written to {out_path}");

    // The acceptance bar: joint assignment over a window must not lose
    // service vs greedy first-match on the same workload.
    let batch50 = runs
        .iter()
        .find(|r| r.spec == DispatchSpec::Batch { window_ms: 50 })
        .expect("batch:50 ran");
    assert!(
        batch50.report.service_rate() >= first.service_rate(),
        "batch:50 service rate {:.4} fell below first-match {:.4}",
        batch50.report.service_rate(),
        first.service_rate(),
    );
    println!(
        "\nshape check: batch:50 serves {:.2}% vs first-match {:.2}% — windowed joint \
         assignment never loses service, and wider windows trade wait for pooling.",
        batch50.report.service_rate() * 100.0,
        first.service_rate() * 100.0,
    );
}
