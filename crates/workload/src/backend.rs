//! [`RideBackend`] adapters for the two systems under test.

use xar_core::{Reason, RideMatch, RideOffer, RideRequest, SearchExplain, XarEngine};
use xar_tshare::engine::{TShareMatch, TShareRequest};
use xar_tshare::TShareEngine;

use crate::dispatch::Candidate;
use crate::sim::{BookResult, RideBackend, SimConfig};
use crate::trips::Trip;

/// [`BookResult`] from a core-engine booking outcome; failures carry
/// the error's typed rejection reason.
pub(crate) fn book_result(res: Result<xar_core::BookingOutcome, xar_core::XarError>) -> BookResult {
    match res {
        Ok(out) => BookResult::Booked {
            actual_detour_m: out.actual_detour_m,
            estimated_detour_m: out.estimated_detour_m,
            walk_m: out.walk_total_m,
            budget_before_m: out.detour_budget_before_m,
            pickup_eta_s: out.pickup_eta_s,
            dropoff_eta_s: out.dropoff_eta_s,
        },
        Err(e) => BookResult::Failed(e.reason()),
    }
}

/// XAR under simulation.
pub struct XarBackend {
    /// The wrapped engine (public so harnesses can inspect stats and
    /// memory after a run).
    pub engine: XarEngine,
}

impl XarBackend {
    /// Wrap an engine.
    pub fn new(engine: XarEngine) -> Self {
        Self { engine }
    }

    fn request(trip: &Trip, cfg: &SimConfig) -> RideRequest {
        RideRequest {
            source: trip.pickup,
            destination: trip.dropoff,
            window_start_s: trip.pickup_s,
            window_end_s: trip.pickup_s + cfg.window_s,
            walk_limit_m: cfg.walk_limit_m,
        }
    }
}

impl RideBackend for XarBackend {
    type Match = RideMatch;

    fn search(&mut self, trip: &Trip, cfg: &SimConfig) -> Vec<RideMatch> {
        self.engine.search(&Self::request(trip, cfg), cfg.k).unwrap_or_default()
    }

    fn search_explained(
        &mut self,
        trip: &Trip,
        cfg: &SimConfig,
    ) -> (Vec<RideMatch>, SearchExplain) {
        let mut explain = SearchExplain::default();
        let matches = self
            .engine
            .search_explained(&Self::request(trip, cfg), cfg.k, &mut explain)
            .unwrap_or_default();
        (matches, explain)
    }

    fn book(&mut self, m: &RideMatch, _cfg: &SimConfig) -> BookResult {
        book_result(self.engine.book(m))
    }

    fn book_checked(&mut self, m: &RideMatch, _cfg: &SimConfig) -> BookResult {
        book_result(self.engine.book_checked(m))
    }

    fn describe(m: &RideMatch) -> Candidate {
        // Score = combined rider walking: the paper's assignment
        // objective ("the ride that incurs least walking ... is
        // matched"), also the engine's primary sort key.
        Candidate { ride: m.ride.0, score: m.walk_total_m(), detour_m: m.detour_est_m }
    }

    fn create(&mut self, trip: &Trip, cfg: &SimConfig) -> Result<(), Reason> {
        self.engine
            .create_ride(&RideOffer {
                source: trip.pickup,
                destination: trip.dropoff,
                departure_s: trip.pickup_s,
                seats: cfg.seats,
                detour_limit_m: cfg.detour_limit_m, driver: None, via: Vec::new(),
            })
            .map(|_| ())
            .map_err(|e| e.reason())
    }

    fn track(&mut self, now_s: f64) {
        self.engine.track_all(now_s);
    }

    fn registry(&self) -> Option<std::sync::Arc<xar_obs::Registry>> {
        Some(self.engine.metrics().registry())
    }

    fn name(&self) -> &'static str {
        "xar"
    }
}

/// The T-Share baseline under simulation.
pub struct TShareBackend {
    /// The wrapped engine.
    pub engine: TShareEngine,
}

impl TShareBackend {
    /// Wrap an engine.
    pub fn new(engine: TShareEngine) -> Self {
        Self { engine }
    }
}

impl RideBackend for TShareBackend {
    type Match = TShareMatch;

    fn search(&mut self, trip: &Trip, cfg: &SimConfig) -> Vec<TShareMatch> {
        let req = TShareRequest {
            pickup: trip.pickup,
            dropoff: trip.dropoff,
            window_start_s: trip.pickup_s,
            window_end_s: trip.pickup_s + cfg.window_s,
        };
        self.engine.search(&req, cfg.k)
    }

    fn book(&mut self, m: &TShareMatch, _cfg: &SimConfig) -> BookResult {
        match self.engine.book(m) {
            Some(actual) => BookResult::Booked {
                actual_detour_m: actual,
                estimated_detour_m: m.detour_m,
                walk_m: 0.0, // T-Share picks riders up at their door
                budget_before_m: f64::INFINITY, // T-Share has no per-ride budget
                pickup_eta_s: m.pickup_eta_s,
                dropoff_eta_s: f64::NAN, // T-Share does not expose it
            },
            // T-Share's `book` re-validates the taxi schedule at
            // insertion time; a `None` means the schedule can no
            // longer absorb the trip — the match went stale.
            None => BookResult::Failed(Reason::StaleCommit),
        }
    }

    // `book_checked` stays the default (`book`): T-Share's `book`
    // re-validates the taxi's schedule at insertion time, so there is
    // no stale-candidate window to close.

    fn describe(m: &TShareMatch) -> Candidate {
        // T-Share has no rider walking; the detour it inflicts on the
        // taxi is the assignment cost.
        Candidate { ride: m.taxi.0, score: m.detour_m, detour_m: m.detour_m }
    }

    fn create(&mut self, trip: &Trip, cfg: &SimConfig) -> Result<(), Reason> {
        self.engine
            .create_taxi(trip.pickup, trip.dropoff, trip.pickup_s, cfg.seats)
            .map(|_| ())
            .ok_or(Reason::NoRoute)
    }

    fn track(&mut self, now_s: f64) {
        self.engine.track_all(now_s);
    }

    fn registry(&self) -> Option<std::sync::Arc<xar_obs::Registry>> {
        Some(self.engine.metrics().registry())
    }

    fn name(&self) -> &'static str {
        "tshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run_simulation;
    use crate::trips::{generate_trips, TripGenConfig};
    use std::sync::Arc;
    use xar_core::EngineConfig;
    use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig};
    use xar_tshare::TShareConfig;

    fn city() -> Arc<xar_roadnet::RoadGraph> {
        Arc::new(CityConfig::manhattan(25, 25, 42).generate())
    }

    fn region(graph: &Arc<xar_roadnet::RoadGraph>) -> Arc<RegionIndex> {
        let pois = sample_pois(graph, &PoiConfig { count: 700, ..Default::default() });
        Arc::new(RegionIndex::build(
            Arc::clone(graph),
            &pois,
            RegionConfig {
                landmark_separation_m: 220.0,
                cluster_goal: ClusterGoal::Delta(150.0),
                max_walk_m: 900.0,
                ..Default::default()
            },
        ))
    }

    #[test]
    fn xar_simulation_shares_rides() {
        let graph = city();
        let reg = region(&graph);
        let trips = generate_trips(&graph, &TripGenConfig { count: 400, ..Default::default() });
        let mut backend = XarBackend::new(XarEngine::new(reg, EngineConfig::default()));
        let report = run_simulation(&mut backend, &trips, &SimConfig::default());
        assert_eq!(report.booked + report.created + report.unservable, 400);
        assert!(report.created > 0, "first trips must create rides");
        assert!(report.booked > 0, "hotspot workload must produce shares");
        // Quality: every booking respected the walking limit.
        for w in &report.walk_m {
            assert!(*w <= 800.0 + 1e-9);
        }
        // XAR search never computes shortest paths.
        let s = backend.engine.stats().snapshot();
        let (creates, bookings, sps) = (s.creates, s.bookings, s.shortest_paths);
        assert!(sps <= creates + 4 * bookings, "search leaked shortest paths");
        // The run's registry covers both the simulator phases and the
        // engine internals.
        let reg = report.registry.as_ref().expect("registry attached");
        assert_eq!(reg.histogram("sim.search_ns").count(), report.looks);
        assert_eq!(reg.histogram("engine.search_ns").count(), report.looks);
        assert!(reg.histogram("engine.search_candidates").count() > 0);
        assert!(report.to_json().contains("\"engine.create_ns\""));
    }

    #[test]
    fn tshare_simulation_shares_rides() {
        let graph = city();
        let trips = generate_trips(&graph, &TripGenConfig { count: 300, ..Default::default() });
        let cfg = TShareConfig { grid_cell_m: 400.0, ..Default::default() };
        let mut backend = TShareBackend::new(TShareEngine::new(Arc::clone(&graph), cfg));
        let report = run_simulation(&mut backend, &trips, &SimConfig::default());
        assert_eq!(report.booked + report.created + report.unservable, 300);
        assert!(report.booked > 0, "T-Share must also find shares");
    }

    #[test]
    fn same_workload_both_systems_comparable_share_rates() {
        // Not a performance test — just that the two backends see the
        // same protocol and produce sane, comparable outcomes.
        let graph = city();
        let reg = region(&graph);
        let trips = generate_trips(&graph, &TripGenConfig { count: 300, ..Default::default() });
        let mut xar = XarBackend::new(XarEngine::new(reg, EngineConfig::default()));
        let rx = run_simulation(&mut xar, &trips, &SimConfig::default());
        let mut ts = TShareBackend::new(TShareEngine::new(
            Arc::clone(&graph),
            TShareConfig { grid_cell_m: 400.0, ..Default::default() },
        ));
        let rt = run_simulation(&mut ts, &trips, &SimConfig::default());
        assert!(rx.share_rate() > 0.02);
        assert!(rt.share_rate() > 0.02);
    }
}
