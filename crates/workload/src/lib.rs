//! Workload generation and the ride-sharing simulation framework.
//!
//! The paper evaluates on the public NYC taxi trip dataset ("we
//! randomly selected a day ... approximately 350,000 taxi trips",
//! §X.A.1). This crate substitutes a seeded synthetic generator that
//! reproduces the properties the evaluation depends on — rush-hour
//! temporal peaks and Zipf-skewed spatial hotspots — plus the exact
//! simulation protocol of §X.A.2:
//!
//! > *"we iterate through the requests and for each request, we first
//! > try to search for an existing ride which could be matched with
//! > this ride request. If a ride is found, this request is matched
//! > with the ride found, thus, booking it. If multiple potential rides
//! > are found, the ride that incurs least walking for the requester is
//! > matched and booked. If no such rides are found, a new ride is
//! > created from this request and made available to be shared. Taxi
//! > capacity is assumed to be 4 (including the driver)."*
//!
//! The simulation is generic over a [`sim::RideBackend`], so the same
//! driver measures XAR and the T-Share baseline under identical
//! workloads — the setup behind Figures 4 and 5.
//!
//! ```
//! use xar_roadnet::CityConfig;
//! use xar_workload::{generate_trips, TripGenConfig};
//!
//! let graph = CityConfig::test_city(42).generate();
//! let trips = generate_trips(&graph, &TripGenConfig { count: 500, ..Default::default() });
//! assert_eq!(trips.len(), 500);
//! // Trips arrive time-sorted, ready for the replay protocol.
//! assert!(trips.windows(2).all(|w| w[0].pickup_s <= w[1].pickup_s));
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod dispatch;
pub mod parallel;
pub mod report;
pub mod searchbench;
pub mod sim;
pub mod writebench;
pub mod trips;

pub use backend::{TShareBackend, XarBackend};
pub use dispatch::{
    run_dispatch, AssignOutcome, Assignment, BatchRequest, BatchWindow, Candidate,
    DispatchPolicy, DispatchSpec, FirstMatch,
};
pub use parallel::{
    run_parallel_dispatch, run_parallel_simulation, run_scaling_point, scaling_curve_json,
    ConcurrentBackend, ScalingPoint, ShardedXarBackend,
};
pub use report::{
    percentile, percentile_ns, Decision, DecisionOutcome, DispatchDeltas, SimReport,
};
pub use searchbench::{
    populated_engine, run_search_point, search_curve_json, SearchPoint,
};
pub use sim::{run_simulation, run_simulation_with, BookResult, RideBackend, SimConfig};
pub use writebench::{run_write_point, write_curve_json, WritePoint};
pub use trips::{generate_trips, Trip, TripGenConfig};
