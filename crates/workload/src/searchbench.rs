//! Search-path micro-benchmark driver (`results/BENCH_search.json`).
//!
//! The engine-scaling curve ([`crate::parallel`]) measures the whole
//! closed-loop §X.A.2 protocol — searches, books and creates compete
//! for the same wall clock, so search latency is entangled with write
//! cost. This module isolates the **read path**: a fixed, pre-populated
//! [`ShardedXarEngine`] is hammered by `N` searcher threads running
//! [`ShardedXarEngine::search_into`] over a shared request set, while
//! one background writer keeps snapshot publication live (a paced
//! create / track mix). Because searches take no locks (see
//! `xar-core`'s `snapshot` module), the latency distribution should be
//! *flat in `N`* up to the core count — the before/after evidence for
//! the lock-free read path lives in `results/BENCH_search.json`, schema
//! in EXPERIMENTS.md.
//!
//! Every searcher reuses one result buffer and its thread-local
//! scratch, so the measured loop is the zero-allocation hot path that
//! `xar-core/tests/snapshot_alloc.rs` guards.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xar_core::{RideMatch, RideOffer, RideRequest, ShardedXarEngine};

use crate::parallel::{run_parallel_simulation, ShardedXarBackend};
use crate::report::percentile_ns;
use crate::sim::SimConfig;
use crate::trips::Trip;

/// The [`RideRequest`] a trip poses under the simulation parameters
/// (same mapping as the simulation backends).
pub fn request_of(trip: &Trip, cfg: &SimConfig) -> RideRequest {
    RideRequest {
        source: trip.pickup,
        destination: trip.dropoff,
        window_start_s: trip.pickup_s,
        window_end_s: trip.pickup_s + cfg.window_s,
        walk_limit_m: cfg.walk_limit_m,
    }
}

/// The [`RideOffer`] a trip becomes when its rider turns driver (same
/// mapping as the simulation backends).
pub fn offer_of(trip: &Trip, cfg: &SimConfig) -> RideOffer {
    RideOffer {
        source: trip.pickup,
        destination: trip.dropoff,
        departure_s: trip.pickup_s,
        seats: cfg.seats,
        detour_limit_m: cfg.detour_limit_m,
        driver: None,
        via: Vec::new(),
    }
}

/// Replay `trips` serially through the §X.A.2 protocol into a fresh
/// `shards`-shard engine and return it populated — the fixed state the
/// search micro-bench reads.
pub fn populated_engine(
    region: &Arc<xar_discretize::RegionIndex>,
    engine_cfg: &xar_core::EngineConfig,
    trips: &[Trip],
    cfg: &SimConfig,
    shards: usize,
) -> ShardedXarEngine {
    let backend = ShardedXarBackend::new(ShardedXarEngine::new(
        Arc::clone(region),
        engine_cfg.clone(),
        shards,
    ));
    let _ = run_parallel_simulation(&backend, trips, cfg, 1);
    backend.engine
}

/// One measured point of the search micro-bench: latency percentiles of
/// the lock-free search path at a fixed searcher-thread count.
#[derive(Debug, Clone)]
pub struct SearchPoint {
    /// Searcher threads (the background writer is extra).
    pub threads: usize,
    /// Searches measured across all threads.
    pub searches: u64,
    /// Matches returned across all measured searches.
    pub matches: u64,
    /// Median search latency, nanoseconds.
    pub p50_ns: f64,
    /// Tail search latency, nanoseconds.
    pub p99_ns: f64,
}

impl SearchPoint {
    /// This point as one JSON object (the element schema of the
    /// `points` array in `results/BENCH_search.json`, see
    /// EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut w = xar_obs::json::JsonWriter::new();
        w.begin_object();
        w.key("threads");
        w.number_u64(self.threads as u64);
        w.key("searches");
        w.number_u64(self.searches);
        w.key("matches");
        w.number_u64(self.matches);
        w.key("search_p50_ns");
        w.number_f64(self.p50_ns);
        w.key("search_p99_ns");
        w.number_f64(self.p99_ns);
        w.end_object();
        w.finish()
    }
}

/// Measure one [`SearchPoint`]: `threads` searchers split
/// `total_searches` calls to [`ShardedXarEngine::search_into`] over
/// `reqs` (round-robin, each thread reusing one result buffer), while a
/// background writer paces creates from `writer_feed` and periodic
/// tracking sweeps so snapshot publication stays active throughout.
///
/// The total search count is constant in `threads`, so points of a
/// curve differ only in concurrency, not in work.
pub fn run_search_point(
    engine: &ShardedXarEngine,
    reqs: &[RideRequest],
    writer_feed: &[Trip],
    cfg: &SimConfig,
    threads: usize,
    total_searches: usize,
) -> SearchPoint {
    assert!(!reqs.is_empty(), "search bench needs at least one request");
    let threads = threads.max(1);
    let per_thread = (total_searches / threads).max(1);
    let stop = AtomicBool::new(false);
    let mut latencies: Vec<u64> = Vec::with_capacity(per_thread * threads);
    let mut matches = 0u64;
    std::thread::scope(|scope| {
        let stop_ref = &stop;
        let writer = scope.spawn(move || {
            let mut fed = 0usize;
            // The tracking clock follows the feed's own timestamps, so
            // the writer never races ahead of the trip day and retires
            // the population out from under the searchers — every point
            // of a curve sees the same state evolution.
            let mut now = writer_feed.first().map_or(0.0, |t| t.pickup_s);
            while !stop_ref.load(Ordering::Acquire) {
                if fed < writer_feed.len() {
                    let trip = &writer_feed[fed];
                    now = trip.pickup_s;
                    let _ = engine.create_ride(&offer_of(trip, cfg));
                    fed += 1;
                    if fed.is_multiple_of(16) {
                        engine.track_all(now);
                    }
                } else {
                    // Feed drained: keep snapshot publication alive with
                    // sweeps at a frozen clock.
                    engine.track_all(now);
                }
                // Paced: writes are milliseconds (shortest paths), and
                // on few-core hosts an unthrottled writer would turn
                // the searchers' tail into pure scheduler preemption.
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut out: Vec<RideMatch> = Vec::new();
                    let mut lats: Vec<u64> = Vec::with_capacity(per_thread);
                    let mut hits = 0u64;
                    // Warm the scratch, the buffer and the epoch slot.
                    for req in reqs.iter().take(64) {
                        let _ = engine.search_into(req, usize::MAX, &mut out);
                    }
                    for i in 0..per_thread {
                        let req = &reqs[(t + i * threads) % reqs.len()];
                        let t0 = Instant::now();
                        let ok = engine.search_into(req, usize::MAX, &mut out).is_ok();
                        lats.push(t0.elapsed().as_nanos() as u64);
                        if ok {
                            hits += out.len() as u64;
                        }
                    }
                    (lats, hits)
                })
            })
            .collect();
        for h in handles {
            let (lats, hits) = h.join().expect("search bench worker panicked");
            latencies.extend_from_slice(&lats);
            matches += hits;
        }
        stop.store(true, Ordering::Release);
        writer.join().expect("search bench writer panicked");
    });
    SearchPoint {
        threads,
        searches: latencies.len() as u64,
        matches,
        p50_ns: percentile_ns(&latencies, 50.0),
        p99_ns: percentile_ns(&latencies, 99.0),
    }
}

/// Assemble a full search micro-bench document (the
/// `results/BENCH_search.json` schema): run parameters, the measuring
/// host's core count, and one [`SearchPoint`] object per searcher
/// count.
pub fn search_curve_json(meta: &[(&str, f64)], cores: usize, points: &[SearchPoint]) -> String {
    let mut w = xar_obs::json::JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("search_microbench");
    for (k, v) in meta {
        w.key(k);
        w.number_f64(*v);
    }
    w.key("cores");
    w.number_u64(cores as u64);
    w.key("points");
    w.begin_array();
    for p in points {
        w.raw(&p.to_json());
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trips::{generate_trips, TripGenConfig};
    use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig};

    fn fixture() -> (Arc<RegionIndex>, Vec<Trip>, SimConfig) {
        let graph = Arc::new(CityConfig::test_city(21).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 200, ..Default::default() });
        let region = Arc::new(RegionIndex::build(
            Arc::clone(&graph),
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(250.0), ..Default::default() },
        ));
        let trips = generate_trips(&graph, &TripGenConfig { count: 200, ..Default::default() });
        (region, trips, SimConfig::default())
    }

    #[test]
    fn measures_a_point_against_a_populated_engine() {
        let (region, trips, cfg) = fixture();
        let split = trips.len() * 3 / 4;
        let engine = populated_engine(
            &region,
            &xar_core::EngineConfig::default(),
            &trips[..split],
            &cfg,
            4,
        );
        assert!(engine.ride_count() > 0, "population left no rides to search");
        let reqs: Vec<RideRequest> = trips.iter().map(|t| request_of(t, &cfg)).collect();
        let p = run_search_point(&engine, &reqs, &trips[split..], &cfg, 2, 400);
        assert_eq!(p.threads, 2);
        assert_eq!(p.searches, 400);
        assert!(p.p50_ns > 0.0 && p.p99_ns >= p.p50_ns);
        let json = p.to_json();
        assert!(json.contains("\"search_p99_ns\""), "{json}");
    }

    #[test]
    fn curve_json_carries_schema_fields() {
        let points = [SearchPoint {
            threads: 1,
            searches: 10,
            matches: 3,
            p50_ns: 1_000.0,
            p99_ns: 2_000.0,
        }];
        let json = search_curve_json(&[("trips", 10.0)], 1, &points);
        assert!(json.contains("\"search_microbench\""), "{json}");
        assert!(json.contains("\"cores\""), "{json}");
        assert!(json.contains("\"points\""), "{json}");
    }
}
