//! The three-stage dispatch pipeline: **generate candidates → assign →
//! commit**.
//!
//! The paper's simulator (§X.A.2) fuses its policy into the replay
//! loop: search, book the first feasible match, else create. This
//! module separates *candidate generation* (one XAR search per
//! request) from *assignment* (a [`DispatchPolicy`]) and *commit*
//! (booking against the live engine), so alternative dispatchers plug
//! in without touching the drivers:
//!
//! * [`FirstMatch`] replays the paper's protocol decision-for-decision
//!   (property-tested in `tests/dispatch_equivalence.rs`).
//! * [`BatchWindow`] collects requests over a window of simulated
//!   time, builds the request→ride candidate bipartite graph from the
//!   per-request search results, assigns greedily by score and
//!   improves the assignment with local 2-swap + eject-reinsert
//!   passes until a fixed point or a swap budget.
//!
//! Batched commits re-validate every candidate against the live
//! engine (`book_checked`): within a window, earlier commits consume
//! seats and detour budget, so a search-time candidate can go stale
//! before its own commit. Rejected commits are counted
//! (`dispatch.stale_commits`) and fall back to a fresh search; so do
//! unassigned requests once the window has changed engine state, which
//! lets them pool into rides created moments earlier in the same
//! window. The batch path additionally records `dispatch.window_ns`,
//! `dispatch.batch_size` and `dispatch.swaps` into the run's registry
//! and wraps the assignment stage in a `dispatch.assign` trace span.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use xar_core::{Reason, SearchExplain};
use xar_obs::events::{self, EventRecord};
use xar_obs::trace::AttrList;
use xar_obs::{Counter, Histogram, Registry};

use crate::report::{Decision, DecisionOutcome, SimReport};
use crate::sim::{BookResult, RideBackend, SimConfig};
use crate::trips::Trip;

mod batch;
mod first_match;

pub use batch::BatchWindow;
pub use first_match::FirstMatch;

/// One edge of the request→ride candidate bipartite graph, as the
/// assignment stage sees it: the backend's opaque match reduced to the
/// ride it points at, the assignment score (lower is better — combined
/// rider walking for XAR, the paper's §X.A.2 objective) and the detour
/// the booking is estimated to add.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Backend-opaque ride identity (capacity is tracked per ride).
    pub ride: u64,
    /// Assignment score, lower is better.
    pub score: f64,
    /// Estimated detour the booking adds, metres.
    pub detour_m: f64,
}

/// One request of a dispatch window: its position in the trip stream
/// (a deterministic tie-breaker) and its candidates, best-first in the
/// backend's search order.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// Index of the trip in the driver's stream.
    pub idx: usize,
    /// Candidate edges, best-first.
    pub candidates: Vec<Candidate>,
}

/// The assignment stage's verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Commit the candidate at this index of the request's list.
    Book(usize),
    /// No candidate assigned — offer a new ride instead.
    Create,
}

/// What [`DispatchPolicy::assign`] returns: one [`Assignment`] per
/// request (same order as the input batch) plus how many improving
/// local-search moves produced it.
#[derive(Debug, Clone)]
pub struct AssignOutcome {
    /// One verdict per batched request.
    pub assignments: Vec<Assignment>,
    /// Improving moves (2-swaps + eject-reinserts) applied.
    pub swaps: u64,
}

/// A pluggable assignment policy — stage 2 of the pipeline. The
/// driver owns stages 1 (candidate generation) and 3 (commit); the
/// policy only decides *which* candidate each request gets.
pub trait DispatchPolicy {
    /// Window width in simulated seconds: requests arriving within
    /// `window_s` of the window's first request are assigned together.
    /// `0.0` closes the window on every arrival (batches of one).
    fn window_s(&self) -> f64 {
        0.0
    }

    /// Cap on requests per window; the window is flushed early when
    /// it fills.
    fn max_batch(&self) -> usize {
        usize::MAX
    }

    /// `true` routes requests through the windowed batch path
    /// (checked commits, re-search fallback, `dispatch.*` metrics);
    /// `false` through the immediate per-request path, which is
    /// byte-for-byte the paper's §X.A.2 replay.
    fn batched(&self) -> bool;

    /// Stage 2: assign every request of `batch` to one of its
    /// candidates or to ride creation.
    fn assign(&mut self, batch: &[BatchRequest]) -> AssignOutcome;

    /// Short policy name for reports and traces.
    fn name(&self) -> &'static str;
}

/// A parsed `--dispatch` CLI value: which policy to build. `Copy` so
/// the parallel driver can hand one to every worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchSpec {
    /// The paper's first-match protocol (the default).
    First,
    /// Batch-window assignment over windows of `window_ms`
    /// milliseconds of simulated time.
    Batch {
        /// Window width, milliseconds of simulated time.
        window_ms: u64,
    },
}

/// Widest accepted batch window: one hour of simulated time.
pub const MAX_BATCH_WINDOW_MS: u64 = 3_600_000;

impl DispatchSpec {
    /// Parse a `--dispatch` value: `first` or `batch:<ms>`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if s == "first" {
            return Ok(Self::First);
        }
        if let Some(ms) = s.strip_prefix("batch:") {
            if let Ok(v) = ms.parse::<u64>() {
                if v <= MAX_BATCH_WINDOW_MS {
                    return Ok(Self::Batch { window_ms: v });
                }
                return Err(format!(
                    "--dispatch batch window {v} ms exceeds the {MAX_BATCH_WINDOW_MS} ms cap"
                ));
            }
        }
        Err(format!("invalid --dispatch value '{s}' (expected 'first' or 'batch:<ms>')"))
    }

    /// Instantiate the policy this spec names. Batch windows cap
    /// per-ride assignments at the seat count new rides offer
    /// (`cfg.seats`) — an upper bound on any live ride's free seats;
    /// the commit re-check enforces the true count.
    pub fn build(&self, cfg: &SimConfig) -> Box<dyn DispatchPolicy + Send> {
        match *self {
            DispatchSpec::First => Box::new(FirstMatch),
            DispatchSpec::Batch { window_ms } => {
                Box::new(BatchWindow::new(window_ms as f64 / 1_000.0, u32::from(cfg.seats)))
            }
        }
    }

    /// Human-readable label (`first`, `batch:50ms`).
    pub fn label(&self) -> String {
        match *self {
            DispatchSpec::First => "first".to_string(),
            DispatchSpec::Batch { window_ms } => format!("batch:{window_ms}ms"),
        }
    }
}

/// A booked request whose pick-up / drop-off milestones have not been
/// reached yet: `(trace id, pickup ETA, dropoff ETA)`. Consumed etas
/// are set to `NaN`.
type PendingLifecycle = (u64, f64, f64);

/// Emit `request.picked_up` / `request.dropped_off` lifecycle instants
/// for every pending booking whose scheduled time has passed `now_s`.
fn flush_lifecycle(pending: &mut Vec<PendingLifecycle>, now_s: f64) {
    pending.retain_mut(|(trace, pickup, dropoff)| {
        if pickup.is_finite() && *pickup <= now_s {
            xar_obs::trace::lifecycle(
                *trace,
                "request.picked_up",
                AttrList::new().with("sim_t_s", *pickup),
            );
            *pickup = f64::NAN;
        }
        if dropoff.is_finite() && *dropoff <= now_s {
            xar_obs::trace::lifecycle(
                *trace,
                "request.dropped_off",
                AttrList::new().with("sim_t_s", *dropoff),
            );
            *dropoff = f64::NAN;
        }
        pickup.is_finite() || dropoff.is_finite()
    });
}

/// Pre-resolved `sim.*` phase series shared by both dispatch paths.
struct PhaseMetrics {
    search_h: Arc<Histogram>,
    book_h: Arc<Histogram>,
    create_h: Arc<Histogram>,
    track_h: Arc<Histogram>,
    requests_total: Arc<Counter>,
    req_booked: Arc<Counter>,
    req_created: Arc<Counter>,
    req_unservable: Arc<Counter>,
    /// One `sim.reject_reason{reason=...}` counter per [`Reason`]
    /// variant (indexed by `Reason::index()`); bumped exactly once per
    /// non-booked request, so `sim.requests{outcome=booked}` plus the
    /// sum over these equals `sim.requests_total` — the conservation
    /// the event plane reconciles against.
    reject_reason: Vec<Arc<Counter>>,
}

impl PhaseMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            search_h: registry.histogram("sim.search_ns"),
            book_h: registry.histogram("sim.book_ns"),
            create_h: registry.histogram("sim.create_ns"),
            track_h: registry.histogram("sim.track_ns"),
            requests_total: registry.counter("sim.requests_total"),
            req_booked: registry.counter_with("sim.requests", &[("outcome", "booked")]),
            req_created: registry.counter_with("sim.requests", &[("outcome", "created")]),
            req_unservable: registry.counter_with("sim.requests", &[("outcome", "unservable")]),
            reject_reason: Reason::ALL
                .iter()
                .map(|r| registry.counter_with("sim.reject_reason", &[("reason", r.code())]))
                .collect(),
        }
    }

    fn reject(&self, reason: Reason) {
        self.reject_reason[reason.index()].inc();
    }
}

/// Process-wide batch-window id sequence: globally unique across the
/// parallel driver's worker threads, so a merged event file never
/// aliases two windows. Only advanced while the event sink is on —
/// ids exist for forensics, not for control flow.
static WINDOW_SEQ: AtomicU64 = AtomicU64::new(0);

fn next_window_id() -> u64 {
    if events::is_enabled() {
        WINDOW_SEQ.fetch_add(1, Ordering::Relaxed)
    } else {
        0
    }
}

/// Pre-resolved `dispatch.*` series — created only on the batch path,
/// so immediate (first-match) runs expose exactly the pre-pipeline
/// metric families.
struct DispatchMetrics {
    window_ns: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    swaps: Arc<Counter>,
    stale_commits: Arc<Counter>,
}

impl DispatchMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            window_ns: registry.histogram("dispatch.window_ns"),
            batch_size: registry.histogram("dispatch.batch_size"),
            swaps: registry.counter("dispatch.swaps"),
            stale_commits: registry.counter("dispatch.stale_commits"),
        }
    }
}

/// Drive `trips` through `backend` under `policy`: the generic
/// replacement for the fused §X.A.2 loop. With a non-batched policy
/// ([`FirstMatch`]) this is the legacy serial protocol,
/// trace-for-trace; with a batched one, windows of requests are
/// searched, assigned jointly, and committed with live re-validation.
pub fn run_dispatch<B: RideBackend, P: DispatchPolicy + ?Sized>(
    backend: &mut B,
    trips: &[Trip],
    cfg: &SimConfig,
    policy: &mut P,
) -> SimReport {
    let mut report = SimReport::default();
    // Phase histograms live in the backend's registry when it has one
    // (so engine internals and simulator phases share a snapshot), in a
    // private one otherwise.
    let registry = backend.registry().unwrap_or_else(|| Arc::new(Registry::new()));
    let pm = PhaseMetrics::new(&registry);
    let system = backend.name();
    let mut pending: Vec<PendingLifecycle> = Vec::new();
    let mut next_track = trips.first().map_or(0.0, |t| t.pickup_s);

    if !policy.batched() {
        for (idx, trip) in trips.iter().enumerate() {
            track_sweeps(backend, cfg, trip.pickup_s, &mut next_track, &pm, &mut pending, system);
            dispatch_immediate(backend, cfg, policy, idx, trip, &mut report, &pm, &mut pending, system);
        }
    } else {
        let dm = DispatchMetrics::new(&registry);
        let mut batch: Vec<(usize, &Trip)> = Vec::new();
        let mut deadline = f64::INFINITY;
        for (idx, trip) in trips.iter().enumerate() {
            // Close the pending window before anything keyed to this
            // trip's (later) arrival time runs.
            if !batch.is_empty() && trip.pickup_s >= deadline {
                flush_window(backend, cfg, policy, &mut batch, &mut report, &pm, &dm, &mut pending, system);
            }
            track_sweeps(backend, cfg, trip.pickup_s, &mut next_track, &pm, &mut pending, system);
            if batch.is_empty() {
                deadline = trip.pickup_s + policy.window_s();
            }
            batch.push((idx, trip));
            if batch.len() >= policy.max_batch() {
                flush_window(backend, cfg, policy, &mut batch, &mut report, &pm, &dm, &mut pending, system);
            }
        }
        if !batch.is_empty() {
            flush_window(backend, cfg, policy, &mut batch, &mut report, &pm, &dm, &mut pending, system);
        }
    }

    // The simulation clock stops at the last request; milestones
    // already scheduled (bookings with known ETAs) are flushed so
    // committed snapshots contain complete rider timelines.
    flush_lifecycle(&mut pending, f64::INFINITY);
    // Publish this thread's buffered wide events: the parallel driver
    // runs one `run_dispatch` per worker thread, so every emitter
    // flushes itself and a post-run snapshot is complete.
    events::flush_thread();
    report.registry = Some(registry);
    report
}

/// Run the tracking sweeps due before a request at `now_s`.
fn track_sweeps<B: RideBackend>(
    backend: &mut B,
    cfg: &SimConfig,
    now_s: f64,
    next_track: &mut f64,
    pm: &PhaseMetrics,
    pending: &mut Vec<PendingLifecycle>,
    system: &'static str,
) {
    if let Some(every) = cfg.track_every_s {
        while now_s >= *next_track {
            {
                let mut troot = xar_obs::trace::root("track");
                troot.attr("sim_t_s", *next_track);
                troot.attr("system", system);
                let t0 = Instant::now();
                backend.track(*next_track);
                pm.track_h.record(t0.elapsed().as_nanos() as u64);
            }
            flush_lifecycle(pending, *next_track);
            *next_track += every;
        }
    }
}

/// One timed search with full accounting.
fn timed_search<B: RideBackend>(
    backend: &mut B,
    trip: &Trip,
    cfg: &SimConfig,
    report: &mut SimReport,
    pm: &PhaseMetrics,
) -> Vec<B::Match> {
    let _phase = xar_obs::trace::span("sim.search");
    let t0 = Instant::now();
    let matches = backend.search(trip, cfg);
    let ns = t0.elapsed().as_nanos() as u64;
    report.search_ns.push(ns);
    pm.search_h.record(ns);
    report.looks += 1;
    matches
}

/// [`timed_search`] through the explained entry point: additionally
/// returns the rejection attribution and the wall-clock nanoseconds
/// (for the request's wide event).
fn timed_search_explained<B: RideBackend>(
    backend: &mut B,
    trip: &Trip,
    cfg: &SimConfig,
    report: &mut SimReport,
    pm: &PhaseMetrics,
) -> (Vec<B::Match>, SearchExplain, u64) {
    let _phase = xar_obs::trace::span("sim.search");
    let t0 = Instant::now();
    let (matches, explain) = backend.search_explained(trip, cfg);
    let ns = t0.elapsed().as_nanos() as u64;
    report.search_ns.push(ns);
    pm.search_h.record(ns);
    report.looks += 1;
    (matches, explain, ns)
}

/// Book-success bookkeeping shared by every commit path. Also fills
/// the outcome half of the request's wide event.
#[allow(clippy::too_many_arguments)]
fn record_booked(
    report: &mut SimReport,
    pm: &PhaseMetrics,
    pending: &mut Vec<PendingLifecycle>,
    trip: &Trip,
    ride: u64,
    res: BookResult,
    ctx: Option<xar_obs::TraceCtx>,
    ev: &mut EventRecord,
) {
    let BookResult::Booked {
        actual_detour_m,
        estimated_detour_m,
        walk_m,
        budget_before_m,
        pickup_eta_s,
        dropoff_eta_s,
    } = res
    else {
        unreachable!("record_booked called with a failed booking");
    };
    report.booked += 1;
    pm.requests_total.inc();
    pm.req_booked.inc();
    report.detour_actual_m.push(actual_detour_m);
    report.detour_estimated_m.push(estimated_detour_m);
    report.detour_excess_m.push((actual_detour_m - budget_before_m).max(0.0));
    report.walk_m.push(walk_m);
    if pickup_eta_s.is_finite() {
        report.wait_s.push((pickup_eta_s - trip.pickup_s).max(0.0));
    }
    ev.outcome = "booked";
    ev.reason = Reason::Served.code();
    ev.ride = ride;
    ev.walk_m = walk_m;
    ev.detour_m = actual_detour_m;
    if pickup_eta_s.is_finite() {
        ev.wait_s = (pickup_eta_s - trip.pickup_s).max(0.0);
    }
    report.decisions.push(Decision { trip_id: trip.id, outcome: DecisionOutcome::Booked { ride } });
    xar_obs::trace::instant(
        "request.booked",
        AttrList::new()
            .with("walk_m", walk_m)
            .with("detour_m", actual_detour_m)
            .with("pickup_eta_s", pickup_eta_s),
    );
    if let Some(ctx) = ctx {
        if pickup_eta_s.is_finite() || dropoff_eta_s.is_finite() {
            pending.push((ctx.trace, pickup_eta_s, dropoff_eta_s));
        }
    }
}

/// Timed ride creation with full accounting; `Err` carries the typed
/// reason the offer was refused with (the request is unservable).
fn timed_create<B: RideBackend>(
    backend: &mut B,
    trip: &Trip,
    cfg: &SimConfig,
    report: &mut SimReport,
    pm: &PhaseMetrics,
) -> Result<(), Reason> {
    let _phase = xar_obs::trace::span("sim.create");
    let t0 = Instant::now();
    let res = backend.create(trip, cfg);
    let ns = t0.elapsed().as_nanos() as u64;
    report.create_ns.push(ns);
    pm.create_h.record(ns);
    pm.requests_total.inc();
    if res.is_ok() {
        report.created += 1;
        pm.req_created.inc();
        report.decisions.push(Decision { trip_id: trip.id, outcome: DecisionOutcome::Created });
        xar_obs::trace::instant("request.created", AttrList::new());
    } else {
        report.unservable += 1;
        pm.req_unservable.inc();
        report.decisions.push(Decision { trip_id: trip.id, outcome: DecisionOutcome::Unservable });
        xar_obs::trace::instant("request.unservable", AttrList::new());
    }
    res
}

/// Decide the rejection reason of a request that ended `created` (a
/// new ride) or `unservable`, from what its commit path saw. Fixed
/// precedence, documented in EXPERIMENTS.md: a failed ride offer
/// (unservable) keeps its own reason; then a stale batch commit, then
/// a batch ejection, then the last live booking failure, then the
/// search's own attribution. Never [`Reason::Unknown`].
fn rejection_reason(
    create_err: Option<Reason>,
    stale_commit: bool,
    ejected: bool,
    last_book_failure: Option<Reason>,
    explain: &SearchExplain,
) -> Reason {
    if let Some(r) = create_err {
        return r;
    }
    if stale_commit {
        return Reason::StaleCommit;
    }
    if ejected {
        return Reason::SwapEjected;
    }
    if let Some(r) = last_book_failure {
        return r;
    }
    explain.dominant_reason(0)
}

/// The immediate per-request path: generate, assign (a batch of one),
/// commit with the §X.A.2 stale fall-through. This is the legacy
/// serial protocol, kept call-for-call so `FirstMatch` replays it
/// exactly.
#[allow(clippy::too_many_arguments)]
fn dispatch_immediate<B: RideBackend, P: DispatchPolicy + ?Sized>(
    backend: &mut B,
    cfg: &SimConfig,
    policy: &mut P,
    idx: usize,
    trip: &Trip,
    report: &mut SimReport,
    pm: &PhaseMetrics,
    pending: &mut Vec<PendingLifecycle>,
    system: &'static str,
) {
    let mut troot = xar_obs::trace::root("request");
    troot.attr("idx", idx as u64);
    troot.attr("sim_t_s", trip.pickup_s);
    troot.attr("system", system);
    let ctx = xar_obs::trace::current_ctx();
    xar_obs::trace::instant("request.born", AttrList::new().with("sim_t_s", trip.pickup_s));
    let mut ev = EventRecord::new(trip.id);
    ev.sim_t_s = trip.pickup_s;
    ev.window = next_window_id();

    // Extra "look" searches (high look-to-book scenarios, Fig. 5b).
    for _ in 0..cfg.lookups_per_request {
        let _ = timed_search(backend, trip, cfg, report, pm);
    }

    let (matches, explain, search_ns) = timed_search_explained(backend, trip, cfg, report, pm);
    report.matches_returned += matches.len() as u64;
    xar_obs::trace::instant("request.offered", AttrList::new().with("matches", matches.len()));
    ev.searches = cfg.lookups_per_request as u32 + 1;
    ev.search_ns = search_ns;
    ev.tier = explain.tier;
    ev.candidates = explain.candidates;
    ev.matches = matches.len() as u32;

    let request = BatchRequest {
        idx,
        candidates: matches.iter().map(|m| B::describe(m)).collect(),
    };
    let outcome = policy.assign(std::slice::from_ref(&request));
    let start = match outcome.assignments.first() {
        Some(Assignment::Book(c)) if *c < matches.len() => *c,
        _ => matches.len(),
    };

    let mut booked = false;
    let mut last_book_failure = None;
    for (ci, m) in matches.iter().enumerate().skip(start) {
        let _phase = xar_obs::trace::span("sim.book");
        let t0 = Instant::now();
        let res = backend.book(m, cfg);
        let ns = t0.elapsed().as_nanos() as u64;
        report.book_ns.push(ns);
        pm.book_h.record(ns);
        if matches!(res, BookResult::Booked { .. }) {
            ev.book_ns = ns;
            record_booked(report, pm, pending, trip, request.candidates[ci].ride, res, ctx, &mut ev);
            booked = true;
            troot.attr("outcome", "booked");
            break;
        }
        if let BookResult::Failed(r) = res {
            last_book_failure = Some(r);
        }
        report.stale_matches += 1;
        ev.stale += 1;
        xar_obs::trace::instant("request.rejected", AttrList::new().with("stale", 1u64));
    }
    if !booked {
        // A policy that declined despite candidates is an ejection —
        // `FirstMatch` never does, but the path is generic.
        let ejected = start >= matches.len() && !matches.is_empty() && last_book_failure.is_none();
        let res = timed_create(backend, trip, cfg, report, pm);
        ev.outcome = if res.is_ok() { "created" } else { "unservable" };
        let reason = rejection_reason(res.err(), false, ejected, last_book_failure, &explain);
        ev.reason = reason.code();
        pm.reject(reason);
        troot.attr("outcome", ev.outcome);
    }
    events::emit(ev);
}

/// The windowed batch path: search every request of the window against
/// the same pre-window engine state, assign jointly, then commit in
/// stream order with live re-validation. Stale or displaced requests
/// re-search before falling back to ride creation, so they can still
/// pool into rides created earlier in the same window.
#[allow(clippy::too_many_arguments)]
fn flush_window<B: RideBackend, P: DispatchPolicy + ?Sized>(
    backend: &mut B,
    cfg: &SimConfig,
    policy: &mut P,
    batch: &mut Vec<(usize, &Trip)>,
    report: &mut SimReport,
    pm: &PhaseMetrics,
    dm: &DispatchMetrics,
    pending: &mut Vec<PendingLifecycle>,
    system: &'static str,
) {
    let t0 = Instant::now();
    let n = batch.len();
    let window_id = next_window_id();
    let mut all_matches: Vec<Vec<B::Match>> = Vec::with_capacity(n);
    let mut explains: Vec<SearchExplain> = Vec::with_capacity(n);
    let mut search_nss: Vec<u64> = Vec::with_capacity(n);
    let mut requests: Vec<BatchRequest> = Vec::with_capacity(n);

    // Stages 1 + 2 under one window trace root; commits get their own
    // per-request roots below (a root span cannot stay open across
    // other requests' work).
    let outcome = {
        let mut wroot = xar_obs::trace::root("dispatch.window");
        wroot.attr("size", n as u64);
        wroot.attr("sim_t_s", batch[0].1.pickup_s);
        wroot.attr("system", system);
        for (idx, trip) in batch.iter() {
            xar_obs::trace::instant(
                "request.born",
                AttrList::new().with("idx", *idx as u64).with("sim_t_s", trip.pickup_s),
            );
            for _ in 0..cfg.lookups_per_request {
                let _ = timed_search(backend, trip, cfg, report, pm);
            }
            let (matches, explain, search_ns) =
                timed_search_explained(backend, trip, cfg, report, pm);
            report.matches_returned += matches.len() as u64;
            xar_obs::trace::instant(
                "request.offered",
                AttrList::new().with("idx", *idx as u64).with("matches", matches.len()),
            );
            requests.push(BatchRequest {
                idx: *idx,
                candidates: matches.iter().map(|m| B::describe(m)).collect(),
            });
            all_matches.push(matches);
            explains.push(explain);
            search_nss.push(search_ns);
        }
        let mut aspan = xar_obs::trace::span("dispatch.assign");
        let outcome = policy.assign(&requests);
        aspan.attr("size", n as u64);
        aspan.attr("swaps", outcome.swaps);
        outcome
    };
    debug_assert_eq!(outcome.assignments.len(), n);
    dm.swaps.add(outcome.swaps);
    report.swaps += outcome.swaps;

    // Stage 3a: commit every valid `Book` assignment of the window in
    // one batched call — the backend coalesces the write cost (the
    // sharded engine takes one write lock and publishes one snapshot
    // per *touched shard* instead of per booking). Within a shard the
    // batch commits in stream order with per-item re-validation, so
    // each booking sees exactly the state a sequential commit would
    // have; results are consumed index-aligned by the stream-order
    // loop below.
    let picks: Vec<(usize, &B::Match)> = batch
        .iter()
        .enumerate()
        .filter_map(|(i, _)| match outcome.assignments.get(i).copied() {
            Some(Assignment::Book(c)) => all_matches[i].get(c).map(|m| (i, m)),
            _ => None,
        })
        .collect();
    let mut primary: Vec<Option<BookResult>> = vec![None; n];
    let mut per_book_ns = 0u64;
    if !picks.is_empty() {
        let _phase = xar_obs::trace::span("sim.book");
        let tb = Instant::now();
        let refs: Vec<&B::Match> = picks.iter().map(|&(_, m)| m).collect();
        let results = backend.book_checked_batch(&refs, cfg);
        debug_assert_eq!(results.len(), picks.len());
        // The lock is taken and the snapshot published once per shard:
        // attribute the amortized cost evenly across the bookings.
        per_book_ns = tb.elapsed().as_nanos() as u64 / picks.len().max(1) as u64;
        for (&(i, _), res) in picks.iter().zip(results) {
            primary[i] = Some(res);
        }
    }

    // Stage 3b: consume in stream order. `dirty` tracks whether the
    // engine changed since the window's searches — once it has,
    // unassigned requests re-search instead of creating blindly. The
    // batched commits above already mutated the engine, so any
    // successful primary booking dirties the whole window.
    let mut dirty = primary.iter().flatten().any(|r| matches!(r, BookResult::Booked { .. }));
    for (i, (idx, trip)) in batch.iter().enumerate() {
        let assignment = outcome.assignments.get(i).copied().unwrap_or(Assignment::Create);
        let mut troot = xar_obs::trace::root("request");
        troot.attr("idx", *idx as u64);
        troot.attr("sim_t_s", trip.pickup_s);
        troot.attr("system", system);
        let ctx = xar_obs::trace::current_ctx();
        let mut ev = EventRecord::new(trip.id);
        ev.sim_t_s = trip.pickup_s;
        ev.window = window_id;
        ev.searches = cfg.lookups_per_request as u32 + 1;
        ev.search_ns = search_nss[i];
        ev.tier = explains[i].tier;
        ev.candidates = explains[i].candidates;
        ev.matches = all_matches[i].len() as u32;

        let mut booked = false;
        let mut assignment_failed = false;
        let mut stale_commit = false;
        let mut last_book_failure = None;
        // A request with window-time candidates that the policy still
        // sent to `Create` was displaced by the assignment stage (e.g.
        // a batch swap gave its ride to a cheaper rider).
        let ejected =
            matches!(assignment, Assignment::Create) && !requests[i].candidates.is_empty();
        if let Assignment::Book(c) = assignment {
            if let Some(res) = primary[i] {
                let ns = per_book_ns;
                report.book_ns.push(ns);
                pm.book_h.record(ns);
                if matches!(res, BookResult::Booked { .. }) {
                    ev.book_ns = ns;
                    record_booked(
                        report,
                        pm,
                        pending,
                        trip,
                        requests[i].candidates[c].ride,
                        res,
                        ctx,
                        &mut ev,
                    );
                    booked = true;
                    troot.attr("outcome", "booked");
                } else {
                    // The candidate went stale within the window.
                    assignment_failed = true;
                    stale_commit = true;
                    ev.stale += 1;
                    dm.stale_commits.inc();
                    report.stale_commits += 1;
                    xar_obs::trace::instant(
                        "request.rejected",
                        AttrList::new().with("stale_commit", 1u64),
                    );
                }
            } else {
                assignment_failed = true;
            }
        }
        if !booked {
            // Fall back to a fresh search when the window-time
            // candidates are no longer trustworthy: the assignment was
            // invalidated, or earlier commits changed the engine.
            if assignment_failed || dirty {
                let fresh = timed_search(backend, trip, cfg, report, pm);
                ev.searches += 1;
                report.matches_returned += fresh.len() as u64;
                for m in &fresh {
                    let _phase = xar_obs::trace::span("sim.book");
                    let t0 = Instant::now();
                    let res = backend.book_checked(m, cfg);
                    let ns = t0.elapsed().as_nanos() as u64;
                    report.book_ns.push(ns);
                    pm.book_h.record(ns);
                    if matches!(res, BookResult::Booked { .. }) {
                        ev.book_ns = ns;
                        record_booked(report, pm, pending, trip, B::describe(m).ride, res, ctx, &mut ev);
                        booked = true;
                        dirty = true;
                        troot.attr("outcome", "booked");
                        break;
                    }
                    if let BookResult::Failed(r) = res {
                        last_book_failure = Some(r);
                    }
                    report.stale_matches += 1;
                    ev.stale += 1;
                    xar_obs::trace::instant(
                        "request.rejected",
                        AttrList::new().with("stale", 1u64),
                    );
                }
            }
            if !booked {
                let res = timed_create(backend, trip, cfg, report, pm);
                if res.is_ok() {
                    dirty = true;
                }
                ev.outcome = if res.is_ok() { "created" } else { "unservable" };
                let reason = rejection_reason(
                    res.err(),
                    stale_commit,
                    ejected,
                    last_book_failure,
                    &explains[i],
                );
                ev.reason = reason.code();
                pm.reject(reason);
                troot.attr("outcome", ev.outcome);
            }
        }
        events::emit(ev);
    }

    let elapsed = t0.elapsed().as_nanos() as u64;
    dm.window_ns.record(elapsed);
    dm.batch_size.record(n as u64);
    report.window_ns.push(elapsed);
    report.window_sizes.push(n as u64);
    batch.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_spec_parses_valid_values() {
        assert_eq!(DispatchSpec::parse("first"), Ok(DispatchSpec::First));
        assert_eq!(DispatchSpec::parse("batch:0"), Ok(DispatchSpec::Batch { window_ms: 0 }));
        assert_eq!(DispatchSpec::parse("batch:50"), Ok(DispatchSpec::Batch { window_ms: 50 }));
        assert_eq!(
            DispatchSpec::parse("batch:3600000"),
            Ok(DispatchSpec::Batch { window_ms: MAX_BATCH_WINDOW_MS })
        );
    }

    #[test]
    fn dispatch_spec_rejects_garbage() {
        for bad in ["", "nope", "batch", "batch:", "batch:abc", "batch:-5", "batch:1.5", "batch:3600001", "FIRST"] {
            assert!(DispatchSpec::parse(bad).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn dispatch_spec_labels() {
        assert_eq!(DispatchSpec::First.label(), "first");
        assert_eq!(DispatchSpec::Batch { window_ms: 50 }.label(), "batch:50ms");
    }

    #[test]
    fn built_policies_match_their_spec() {
        let cfg = SimConfig::default();
        let first = DispatchSpec::First.build(&cfg);
        assert!(!first.batched());
        assert_eq!(first.name(), "first");
        let batch = DispatchSpec::Batch { window_ms: 50 }.build(&cfg);
        assert!(batch.batched());
        assert!((batch.window_s() - 0.05).abs() < 1e-12);
    }
}
