//! Batch-window assignment: jointly assign a window of requests to
//! rides by score, then improve the assignment with local search.
//!
//! The window's candidate edges form a bipartite graph between
//! requests and rides; each ride can absorb at most `ride_capacity`
//! requests per window (an optimistic seat bound — the commit stage
//! re-checks the live count). Assignment runs in two phases:
//!
//! 1. **Greedy seeding** — all edges sorted by score (ties broken by
//!    request index then candidate rank), each taken when its request
//!    is unassigned and its ride has spare window capacity. This is
//!    the classic greedy matching, a ½-approximation of the
//!    maximum-score matching.
//! 2. **Improvement loop** — alternating *eject–reinsert* passes
//!    (place an unassigned request by relocating the cheapest-to-move
//!    current assignee of one of its rides) and *2-swap* passes
//!    (exchange the rides of two assigned requests when the swapped
//!    total score is strictly lower), repeated until neither pass
//!    finds a move or a swap budget is exhausted.
//!
//! Termination: every accepted move strictly decreases the potential
//! `(-assigned, Σ score)` in lexicographic order — eject–reinsert
//! grows `assigned` by one, a 2-swap keeps `assigned` and lowers the
//! score sum by at least `EPS`. Both components are bounded below
//! (assigned ≤ |batch|; score sums are sums over a finite edge set),
//! so the loop reaches a fixed point; `swap_budget` is a backstop, not
//! the usual exit.

use std::collections::HashMap;

use super::{AssignOutcome, Assignment, BatchRequest, DispatchPolicy};

/// Minimum score improvement for a move to count as strictly better —
/// guards the termination argument against float round-off.
const EPS: f64 = 1e-9;

/// Default cap on improving moves per window.
const DEFAULT_SWAP_BUDGET: u64 = 10_000;

/// Windowed joint assignment with greedy seeding and 2-swap +
/// eject–reinsert improvement. See the module docs for the algorithm.
#[derive(Debug, Clone)]
pub struct BatchWindow {
    window_s: f64,
    ride_capacity: u32,
    max_batch: usize,
    swap_budget: u64,
}

impl BatchWindow {
    /// A window of `window_s` simulated seconds where each ride
    /// absorbs at most `ride_capacity` requests.
    pub fn new(window_s: f64, ride_capacity: u32) -> Self {
        Self {
            window_s,
            ride_capacity: ride_capacity.max(1),
            max_batch: usize::MAX,
            swap_budget: DEFAULT_SWAP_BUDGET,
        }
    }

    /// Cap the number of requests per window (flushes early when full).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Override the improving-move budget.
    pub fn with_swap_budget(mut self, budget: u64) -> Self {
        self.swap_budget = budget;
        self
    }
}

impl DispatchPolicy for BatchWindow {
    fn window_s(&self) -> f64 {
        self.window_s
    }

    fn max_batch(&self) -> usize {
        self.max_batch
    }

    fn batched(&self) -> bool {
        true
    }

    fn assign(&mut self, batch: &[BatchRequest]) -> AssignOutcome {
        let n = batch.len();
        // assigned[i] = candidate index request i holds, if any.
        let mut assigned: Vec<Option<usize>> = vec![None; n];
        // Per-window load of each ride seen in the candidate graph.
        let mut used: HashMap<u64, u32> = HashMap::new();
        let cap = self.ride_capacity;

        // Phase 1: greedy seeding over all edges, best score first.
        // Ties break by (request index, candidate rank) so a window of
        // one request always takes candidates[0] — the first-match
        // decision, which the batch:0 equivalence test pins down.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (i, req) in batch.iter().enumerate() {
            for ci in 0..req.candidates.len() {
                edges.push((i, ci));
            }
        }
        edges.sort_by(|&(i, ci), &(j, cj)| {
            let a = batch[i].candidates[ci].score;
            let b = batch[j].candidates[cj].score;
            a.total_cmp(&b).then(i.cmp(&j)).then(ci.cmp(&cj))
        });
        for &(i, ci) in &edges {
            if assigned[i].is_some() {
                continue;
            }
            let ride = batch[i].candidates[ci].ride;
            let load = used.entry(ride).or_insert(0);
            if *load < cap {
                *load += 1;
                assigned[i] = Some(ci);
            }
        }

        // Phase 2: improve until a fixed point or the budget runs out.
        let mut swaps: u64 = 0;
        loop {
            let mut improved = false;

            // Eject–reinsert: seat an unassigned request u by moving a
            // current assignee v of one of u's rides to v's own
            // cheapest alternative ride with spare capacity. The move
            // with the lowest total score delta wins; ride capacity
            // freed by earlier passes is used directly when available.
            'reinsert: for u in 0..n {
                if assigned[u].is_some() {
                    continue;
                }
                for (uci, cand) in batch[u].candidates.iter().enumerate() {
                    if swaps >= self.swap_budget {
                        break 'reinsert;
                    }
                    let load = used.get(&cand.ride).copied().unwrap_or(0);
                    if load < cap {
                        *used.entry(cand.ride).or_insert(0) += 1;
                        assigned[u] = Some(uci);
                        swaps += 1;
                        improved = true;
                        break;
                    }
                    // Ride full: find the assignee of this ride whose
                    // relocation is cheapest. Candidates are
                    // best-first, so the first feasible alternative is
                    // the assignee's cheapest escape.
                    let mut best: Option<(usize, usize, f64)> = None;
                    for v in 0..n {
                        let Some(vci) = assigned[v] else { continue };
                        if batch[v].candidates[vci].ride != cand.ride {
                            continue;
                        }
                        for (aci, alt) in batch[v].candidates.iter().enumerate() {
                            if alt.ride == cand.ride {
                                continue;
                            }
                            if used.get(&alt.ride).copied().unwrap_or(0) >= cap {
                                continue;
                            }
                            let delta = alt.score - batch[v].candidates[vci].score;
                            // Strict `<` keeps the lowest request
                            // index on ties — deterministic output.
                            if best.is_none_or(|(_, _, d)| delta < d - EPS) {
                                best = Some((v, aci, delta));
                            }
                            break;
                        }
                    }
                    if let Some((v, aci, _)) = best {
                        let v_ride = batch[v].candidates[aci].ride;
                        *used.entry(v_ride).or_insert(0) += 1;
                        assigned[v] = Some(aci);
                        // cand.ride's load is unchanged: v out, u in.
                        assigned[u] = Some(uci);
                        swaps += 1;
                        improved = true;
                        break;
                    }
                }
            }

            // 2-swap: exchange the rides of two assigned requests when
            // that strictly lowers the combined score. Per-ride loads
            // are unchanged, so no capacity bookkeeping is needed.
            'swap: for i in 0..n {
                let Some(ici) = assigned[i] else { continue };
                for j in (i + 1)..n {
                    if swaps >= self.swap_budget {
                        break 'swap;
                    }
                    let Some(jci) = assigned[j] else { continue };
                    let ri = batch[i].candidates[ici].ride;
                    let rj = batch[j].candidates[jci].ride;
                    if ri == rj {
                        continue;
                    }
                    let Some(i_on_rj) = first_candidate_on(batch, i, rj) else { continue };
                    let Some(j_on_ri) = first_candidate_on(batch, j, ri) else { continue };
                    let cur = batch[i].candidates[ici].score + batch[j].candidates[jci].score;
                    let alt = batch[i].candidates[i_on_rj].score + batch[j].candidates[j_on_ri].score;
                    if alt + EPS < cur {
                        assigned[i] = Some(i_on_rj);
                        assigned[j] = Some(j_on_ri);
                        swaps += 1;
                        improved = true;
                        // `ici` is stale after the exchange — restart
                        // request i's scan from the outer loop.
                        continue 'swap;
                    }
                }
            }

            if !improved || swaps >= self.swap_budget {
                break;
            }
        }

        AssignOutcome {
            assignments: assigned
                .into_iter()
                .map(|a| a.map_or(Assignment::Create, Assignment::Book))
                .collect(),
            swaps,
        }
    }

    fn name(&self) -> &'static str {
        "batch"
    }
}

/// Best (lowest-score) candidate of request `i` that targets `ride`.
fn first_candidate_on(batch: &[BatchRequest], i: usize, ride: u64) -> Option<usize> {
    batch[i].candidates.iter().position(|c| c.ride == ride)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Candidate;

    fn req(idx: usize, cands: &[(u64, f64)]) -> BatchRequest {
        BatchRequest {
            idx,
            candidates: cands
                .iter()
                .map(|&(ride, score)| Candidate { ride, score, detour_m: 0.0 })
                .collect(),
        }
    }

    #[test]
    fn single_request_takes_best_candidate() {
        let mut p = BatchWindow::new(0.0, 3);
        let out = p.assign(&[req(0, &[(1, 5.0), (2, 9.0)])]);
        assert_eq!(out.assignments, vec![Assignment::Book(0)]);
    }

    #[test]
    fn empty_candidates_create() {
        let mut p = BatchWindow::new(0.0, 3);
        let out = p.assign(&[req(0, &[])]);
        assert_eq!(out.assignments, vec![Assignment::Create]);
    }

    #[test]
    fn capacity_forces_second_request_elsewhere() {
        let mut p = BatchWindow::new(0.05, 1);
        // Both want ride 1; request 0 is cheaper there, request 1 has
        // an alternative.
        let out = p.assign(&[req(0, &[(1, 5.0)]), req(1, &[(1, 6.0), (2, 8.0)])]);
        assert_eq!(out.assignments, vec![Assignment::Book(0), Assignment::Book(1)]);
    }

    #[test]
    fn eject_reinsert_seats_otherwise_stranded_request() {
        let mut p = BatchWindow::new(0.05, 1);
        // Greedy gives ride 1 to request 0 (score 5 < 6); request 1
        // only knows ride 1, so request 0 must relocate to ride 2.
        let out = p.assign(&[req(0, &[(1, 5.0), (2, 7.0)]), req(1, &[(1, 6.0)])]);
        assert_eq!(out.assignments, vec![Assignment::Book(1), Assignment::Book(0)]);
        assert!(out.swaps >= 1);
    }

    #[test]
    fn two_swap_fixes_crossed_assignment() {
        let mut p = BatchWindow::new(0.05, 1);
        // Greedy seeds by global score order: request 1 takes ride 1
        // (score 1), then request 0 must take ride 2 (score 9) —
        // total 10. Swapped: 2 + 4 = 6.
        let out = p.assign(&[req(0, &[(1, 2.0), (2, 9.0)]), req(1, &[(1, 1.0), (2, 4.0)])]);
        assert_eq!(out.assignments, vec![Assignment::Book(0), Assignment::Book(1)]);
        assert!(out.swaps >= 1);
    }

    #[test]
    fn swap_budget_caps_moves() {
        let mut p = BatchWindow::new(0.05, 1).with_swap_budget(0);
        // Same crossed instance as above: with no budget, greedy
        // output stands.
        let out = p.assign(&[req(0, &[(1, 2.0), (2, 9.0)]), req(1, &[(1, 1.0), (2, 4.0)])]);
        assert_eq!(out.assignments, vec![Assignment::Book(1), Assignment::Book(0)]);
        assert_eq!(out.swaps, 0);
    }

    #[test]
    fn assignment_is_deterministic() {
        let batch = vec![
            req(0, &[(1, 3.0), (3, 5.0)]),
            req(1, &[(1, 3.0), (2, 4.0)]),
            req(2, &[(2, 2.0), (3, 6.0)]),
            req(3, &[(3, 1.0)]),
        ];
        let a = BatchWindow::new(0.05, 1).assign(&batch);
        let b = BatchWindow::new(0.05, 1).assign(&batch);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.swaps, b.swaps);
    }
}
