//! The paper's §X.A.2 protocol expressed as a [`DispatchPolicy`]:
//! every request is assigned its best (least combined walking)
//! candidate immediately, with no batching.

use super::{AssignOutcome, Assignment, BatchRequest, DispatchPolicy};

/// First-match assignment: take the head of the backend's
/// already-sorted candidate list, or create a ride when there is none.
///
/// `batched()` is `false`, so the driver runs the immediate
/// per-request path — including the stale-match fall-through that the
/// fused pre-pipeline simulator performed — and this policy's `assign`
/// only picks the starting candidate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstMatch;

impl DispatchPolicy for FirstMatch {
    fn batched(&self) -> bool {
        false
    }

    fn assign(&mut self, batch: &[BatchRequest]) -> AssignOutcome {
        AssignOutcome {
            assignments: batch
                .iter()
                .map(|r| {
                    if r.candidates.is_empty() {
                        Assignment::Create
                    } else {
                        Assignment::Book(0)
                    }
                })
                .collect(),
            swaps: 0,
        }
    }

    fn name(&self) -> &'static str {
        "first"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::Candidate;

    #[test]
    fn first_match_books_head_or_creates() {
        let mut p = FirstMatch;
        let batch = vec![
            BatchRequest {
                idx: 0,
                candidates: vec![
                    Candidate { ride: 7, score: 10.0, detour_m: 100.0 },
                    Candidate { ride: 9, score: 20.0, detour_m: 50.0 },
                ],
            },
            BatchRequest { idx: 1, candidates: vec![] },
        ];
        let out = p.assign(&batch);
        assert_eq!(out.assignments, vec![Assignment::Book(0), Assignment::Create]);
        assert_eq!(out.swaps, 0);
    }
}
