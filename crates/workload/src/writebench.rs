//! Write-path micro-benchmark driver (`results/BENCH_write.json`).
//!
//! The search micro-bench ([`crate::searchbench`]) isolates the read
//! path; this module isolates the **write path**: a pre-populated
//! [`ShardedXarEngine`] takes a pure booking storm (no creates, no
//! searches inside the timed section) and we measure what each booking
//! costs end-to-end — the route splice plus the snapshot publish — at
//! increasing shard population. The same storm is replayed twice
//! against identical engines, once with incremental publication (the
//! default: only dirty cluster segments rebuilt, the rest `Arc`-shared)
//! and once forced down the full-rebuild path
//! ([`ShardedXarEngine::set_full_publish`]). The paper's dynamic-
//! insertion analysis demands the former scale with the touched
//! clusters, not the shard. The sweep therefore grows the **city**
//! with the population (side ∝ √mult, constant rides-per-cluster):
//! a booking's dirty set is bounded by its detour budget and stays
//! fixed while `rides` and `clusters` grow 8×, so in
//! `results/BENCH_write.json` the `publish_p50_ns` column should stay
//! flat-ish as `rides` grows while `full_publish_p50_ns` climbs with
//! the shard. Schema in EXPERIMENTS.md.

use std::sync::Arc;
use std::time::Instant;

use xar_core::{ShardedXarEngine, XarError};

use crate::report::percentile_ns;
use crate::searchbench::{offer_of, request_of};
use crate::sim::SimConfig;
use crate::trips::Trip;

/// One measured point of the write micro-bench: booking and publish
/// latency percentiles at a fixed pre-populated ride count, incremental
/// vs full-rebuild publication.
#[derive(Debug, Clone)]
pub struct WritePoint {
    /// Population multiplier for this point — the sweep's join key.
    /// Unlike `rides` it is stable across city sizes, so a CI smoke
    /// run on a small city still shares points with the committed
    /// baseline curve.
    pub mult: usize,
    /// Live rides in the engine when the booking storm starts.
    pub rides: usize,
    /// Clusters in this point's region — grows with `rides` in the
    /// constant-density sweep while `dirty_clusters_mean` stays flat.
    pub clusters: usize,
    /// Successful bookings in the incremental-mode storm.
    pub bookings: u64,
    /// Median / tail end-to-end booking latency (incremental mode),
    /// nanoseconds — includes the snapshot publish.
    pub book_p50_ns: f64,
    /// Tail booking latency (incremental mode), nanoseconds.
    pub book_p99_ns: f64,
    /// Median / tail snapshot publish cost under incremental
    /// publication, nanoseconds.
    pub publish_p50_ns: f64,
    /// Tail incremental publish cost, nanoseconds.
    pub publish_p99_ns: f64,
    /// Median / tail publish cost with every publish forced down the
    /// full-rebuild path — the comparison series.
    pub full_publish_p50_ns: f64,
    /// Tail full-rebuild publish cost, nanoseconds.
    pub full_publish_p99_ns: f64,
    /// Mean dirty clusters drained per publish (incremental mode) —
    /// the quantity incremental cost is proportional to.
    pub dirty_clusters_mean: f64,
    /// Publishes that actually took the patching path (vs falling back
    /// to a full rebuild on the ≥half-dirty heuristic).
    pub partial_publishes: u64,
}

impl WritePoint {
    /// This point as one JSON object (the element schema of the
    /// `points` array in `results/BENCH_write.json`, see
    /// EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut w = xar_obs::json::JsonWriter::new();
        w.begin_object();
        w.key("mult");
        w.number_u64(self.mult as u64);
        w.key("rides");
        w.number_u64(self.rides as u64);
        w.key("clusters");
        w.number_u64(self.clusters as u64);
        w.key("bookings");
        w.number_u64(self.bookings);
        w.key("book_p50_ns");
        w.number_f64(self.book_p50_ns);
        w.key("book_p99_ns");
        w.number_f64(self.book_p99_ns);
        w.key("publish_p50_ns");
        w.number_f64(self.publish_p50_ns);
        w.key("publish_p99_ns");
        w.number_f64(self.publish_p99_ns);
        w.key("full_publish_p50_ns");
        w.number_f64(self.full_publish_p50_ns);
        w.key("full_publish_p99_ns");
        w.number_f64(self.full_publish_p99_ns);
        w.key("dirty_clusters_mean");
        w.number_f64(self.dirty_clusters_mean);
        w.key("partial_publishes");
        w.number_u64(self.partial_publishes);
        w.end_object();
        w.finish()
    }
}

/// Booking-storm measurements against one engine configuration.
struct StormStats {
    bookings: u64,
    book_p50_ns: f64,
    book_p99_ns: f64,
    publish_p50_ns: f64,
    publish_p99_ns: f64,
    dirty_clusters_mean: f64,
    partial_publishes: u64,
}

/// A fresh engine populated with `populate` as ride offers (pure
/// creates — full ride-count control, unlike the protocol replay).
fn fresh_engine(
    region: &Arc<xar_discretize::RegionIndex>,
    engine_cfg: &xar_core::EngineConfig,
    populate: &[Trip],
    cfg: &SimConfig,
    shards: usize,
) -> ShardedXarEngine {
    let engine = ShardedXarEngine::new(Arc::clone(region), engine_cfg.clone(), shards);
    for t in populate {
        let _ = engine.create_ride(&offer_of(t, cfg));
    }
    engine
}

/// Drive `book_feed` as a booking storm: search (untimed), book the
/// best match (timed — this is the write path under measurement).
/// Publish cost and dirty-cluster fan-out are read back as deltas of
/// the engine's own `engine.snapshot_publish_ns` /
/// `snapshot.dirty_clusters` histograms, so the numbers are exactly
/// what production telemetry would report.
fn run_storm(engine: &ShardedXarEngine, book_feed: &[Trip], cfg: &SimConfig) -> StormStats {
    let m = engine.metrics();
    let publish_before = m.snapshot_publish_ns.snapshot();
    let dirty_before = m.snapshot_dirty_clusters.snapshot();
    let partial_before = m.snapshot_partial_publishes.get();
    let mut book_ns: Vec<u64> = Vec::with_capacity(book_feed.len());
    let mut bookings = 0u64;
    for trip in book_feed {
        let Ok(matches) = engine.search(&request_of(trip, cfg), 4) else { continue };
        for mm in &matches {
            let t0 = Instant::now();
            let res = engine.book_checked(mm);
            book_ns.push(t0.elapsed().as_nanos() as u64);
            match res {
                Ok(_) => {
                    bookings += 1;
                    break;
                }
                // Stale matches fall through; a missing ride means the
                // match crossed a tracking retirement, also fine.
                Err(XarError::NoSeats(_) | XarError::DetourExceeded { .. }) => continue,
                Err(_) => break,
            }
        }
    }
    let publish = m.snapshot_publish_ns.snapshot().delta(&publish_before);
    let dirty = m.snapshot_dirty_clusters.snapshot().delta(&dirty_before);
    StormStats {
        bookings,
        book_p50_ns: percentile_ns(&book_ns, 50.0),
        book_p99_ns: percentile_ns(&book_ns, 99.0),
        publish_p50_ns: publish.quantile(50.0) as f64,
        publish_p99_ns: publish.quantile(99.0) as f64,
        dirty_clusters_mean: dirty.sum as f64 / dirty.count.max(1) as f64,
        partial_publishes: m.snapshot_partial_publishes.get() - partial_before,
    }
}

/// Measure one [`WritePoint`]: populate two identical engines with
/// `populate`, storm both with `book_feed` — the first under
/// incremental publication, the second forced full-rebuild — and fuse
/// the two runs into one point keyed by the ride count.
pub fn run_write_point(
    region: &Arc<xar_discretize::RegionIndex>,
    engine_cfg: &xar_core::EngineConfig,
    populate: &[Trip],
    book_feed: &[Trip],
    cfg: &SimConfig,
    shards: usize,
    mult: usize,
) -> WritePoint {
    let incremental = fresh_engine(region, engine_cfg, populate, cfg, shards);
    let rides = incremental.ride_count();
    let inc = run_storm(&incremental, book_feed, cfg);

    let full_engine = fresh_engine(region, engine_cfg, populate, cfg, shards);
    full_engine.set_full_publish(true);
    let full = run_storm(&full_engine, book_feed, cfg);

    WritePoint {
        mult,
        rides,
        clusters: region.cluster_count(),
        bookings: inc.bookings,
        book_p50_ns: inc.book_p50_ns,
        book_p99_ns: inc.book_p99_ns,
        publish_p50_ns: inc.publish_p50_ns,
        publish_p99_ns: inc.publish_p99_ns,
        full_publish_p50_ns: full.publish_p50_ns,
        full_publish_p99_ns: full.publish_p99_ns,
        dirty_clusters_mean: inc.dirty_clusters_mean,
        partial_publishes: inc.partial_publishes,
    }
}

/// Assemble a full write micro-bench document (the
/// `results/BENCH_write.json` schema): run parameters, the measuring
/// host's core count, and one [`WritePoint`] object per population
/// size.
pub fn write_curve_json(meta: &[(&str, f64)], cores: usize, points: &[WritePoint]) -> String {
    let mut w = xar_obs::json::JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("write_microbench");
    for (k, v) in meta {
        w.key(k);
        w.number_f64(*v);
    }
    w.key("cores");
    w.number_u64(cores as u64);
    w.key("points");
    w.begin_array();
    for p in points {
        w.raw(&p.to_json());
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trips::{generate_trips, TripGenConfig};
    use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
    use xar_roadnet::{sample_pois, CityConfig, PoiConfig};

    fn fixture() -> (Arc<RegionIndex>, Vec<Trip>, SimConfig) {
        let graph = Arc::new(CityConfig::test_city(23).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 200, ..Default::default() });
        let region = Arc::new(RegionIndex::build(
            Arc::clone(&graph),
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(250.0), ..Default::default() },
        ));
        let trips = generate_trips(&graph, &TripGenConfig { count: 240, ..Default::default() });
        (region, trips, SimConfig::default())
    }

    #[test]
    fn measures_a_point_with_both_publish_modes() {
        let (region, trips, cfg) = fixture();
        // Interleave: trips are time-sorted, so a head/tail split would
        // leave the storm's request windows after every ride departed.
        let populate: Vec<Trip> = trips.iter().step_by(2).copied().collect();
        let book_feed: Vec<Trip> = trips.iter().skip(1).step_by(2).copied().collect();
        let p = run_write_point(
            &region,
            &xar_core::EngineConfig::default(),
            &populate,
            &book_feed,
            &cfg,
            4,
            1,
        );
        assert_eq!(p.mult, 1);
        assert_eq!(p.clusters, region.cluster_count());
        assert!(p.rides > 0, "population must create rides");
        assert!(p.bookings > 0, "storm must land bookings");
        assert!(p.book_p50_ns > 0.0 && p.book_p99_ns >= p.book_p50_ns);
        assert!(p.publish_p50_ns > 0.0, "incremental publishes must be measured");
        assert!(p.full_publish_p50_ns > 0.0, "full publishes must be measured");
        let json = p.to_json();
        assert!(json.contains("\"full_publish_p50_ns\""), "{json}");
        assert!(json.contains("\"dirty_clusters_mean\""), "{json}");
    }

    #[test]
    fn curve_json_carries_schema_fields() {
        let points = [WritePoint {
            mult: 1,
            rides: 100,
            clusters: 12,
            bookings: 50,
            book_p50_ns: 1_000.0,
            book_p99_ns: 5_000.0,
            publish_p50_ns: 200.0,
            publish_p99_ns: 900.0,
            full_publish_p50_ns: 4_000.0,
            full_publish_p99_ns: 9_000.0,
            dirty_clusters_mean: 6.5,
            partial_publishes: 40,
        }];
        let json = write_curve_json(&[("trips", 10.0)], 1, &points);
        assert!(json.contains("\"write_microbench\""), "{json}");
        assert!(json.contains("\"cores\""), "{json}");
        assert!(json.contains("\"mult\""), "{json}");
        assert!(json.contains("\"rides\""), "{json}");
    }
}
