//! Simulation measurement reports.

/// Everything one simulation run records: per-operation latencies and
/// outcome counters. The figure harnesses aggregate these into the
/// paper's series.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct SimReport {
    /// Wall-clock nanoseconds per search operation.
    pub search_ns: Vec<u64>,
    /// Wall-clock nanoseconds per ride-creation operation.
    pub create_ns: Vec<u64>,
    /// Wall-clock nanoseconds per booking attempt.
    pub book_ns: Vec<u64>,
    /// Searches issued (looks).
    pub looks: u64,
    /// Total matches returned across searches.
    pub matches_returned: u64,
    /// Requests served by booking an existing ride.
    pub booked: u64,
    /// Requests that created a new ride (a new car on the road).
    pub created: u64,
    /// Matches that went stale between search and booking.
    pub stale_matches: u64,
    /// Requests that could neither book nor create.
    pub unservable: u64,
    /// Realised booking detours, metres.
    pub detour_actual_m: Vec<f64>,
    /// Search-time detour estimates, metres.
    pub detour_estimated_m: Vec<f64>,
    /// Rider walking distances, metres.
    pub walk_m: Vec<f64>,
    /// Per booking: how far the realised detour exceeded the ride's
    /// remaining detour *limit* (0 when the limit held) — the paper's
    /// "detour limit exceeded by at most ..." quantity.
    pub detour_excess_m: Vec<f64>,
}

impl SimReport {
    /// Detour-approximation errors `actual − estimated` (clamped at 0),
    /// metres — the quantity Figure 3a plots against ε.
    pub fn detour_errors_m(&self) -> Vec<f64> {
        self.detour_actual_m
            .iter()
            .zip(&self.detour_estimated_m)
            .map(|(a, e)| (a - e).max(0.0))
            .collect()
    }

    /// Share of requests served by sharing (booked / (booked+created)).
    pub fn share_rate(&self) -> f64 {
        let total = self.booked + self.created;
        if total == 0 {
            0.0
        } else {
            self.booked as f64 / total as f64
        }
    }

    /// Total wall-clock seconds spent in searches.
    pub fn total_search_s(&self) -> f64 {
        self.search_ns.iter().sum::<u64>() as f64 / 1e9
    }

    /// Total wall-clock seconds spent in creations.
    pub fn total_create_s(&self) -> f64 {
        self.create_ns.iter().sum::<u64>() as f64 / 1e9
    }

    /// Total wall-clock seconds spent in bookings.
    pub fn total_book_s(&self) -> f64 {
        self.book_ns.iter().sum::<u64>() as f64 / 1e9
    }

    /// Mean search latency in milliseconds.
    pub fn mean_search_ms(&self) -> f64 {
        if self.search_ns.is_empty() {
            0.0
        } else {
            self.search_ns.iter().sum::<u64>() as f64 / self.search_ns.len() as f64 / 1e6
        }
    }
}

/// The `p`-th percentile (0–100) of nanosecond samples, in
/// nanoseconds (convenience wrapper over [`percentile`]).
pub fn percentile_ns(values: &[u64], p: f64) -> f64 {
    let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
    percentile(&v, p)
}

/// The `p`-th percentile (0–100) of `values`, by linear interpolation
/// on the sorted data. Returns 0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_ns_converts() {
        assert_eq!(percentile_ns(&[100u64, 200, 300], 100.0), 300.0);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
        let empty: Vec<f64> = vec![];
        assert_eq!(percentile(&empty, 50.0), 0.0);
        let one = vec![7.0f64];
        assert_eq!(percentile(&one, 95.0), 7.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let v: Vec<f64> = vec![40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 0.0), 10.0);
    }

    #[test]
    fn detour_errors_clamp() {
        let r = SimReport {
            detour_actual_m: vec![100.0, 50.0],
            detour_estimated_m: vec![80.0, 60.0],
            ..Default::default()
        };
        assert_eq!(r.detour_errors_m(), vec![20.0, 0.0]);
    }

    #[test]
    fn share_rate() {
        let r = SimReport { booked: 30, created: 70, ..Default::default() };
        assert!((r.share_rate() - 0.3).abs() < 1e-12);
        assert_eq!(SimReport::default().share_rate(), 0.0);
    }

    #[test]
    fn totals() {
        let r = SimReport {
            search_ns: vec![1_000_000, 3_000_000],
            ..Default::default()
        };
        assert!((r.total_search_s() - 0.004).abs() < 1e-12);
        assert!((r.mean_search_ms() - 2.0).abs() < 1e-12);
    }
}
