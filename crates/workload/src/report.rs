//! Simulation measurement reports.

use std::sync::Arc;

use xar_obs::json::JsonWriter;
use xar_obs::Registry;

/// The booking decision one request ended with — what the dispatch
/// equivalence properties compare across policies: two runs are
/// "decision-identical" when their sorted decision vectors are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Decision {
    /// The trip the decision is for.
    pub trip_id: u64,
    /// What happened to it.
    pub outcome: DecisionOutcome,
}

/// Outcome element of a [`Decision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecisionOutcome {
    /// Pooled into an existing ride (the backend's opaque ride id).
    Booked {
        /// The ride that absorbed the request.
        ride: u64,
    },
    /// Put a new car on the road.
    Created,
    /// Could do neither.
    Unservable,
}

/// Everything one simulation run records: per-operation latencies,
/// outcome counters, and the metric registry the run recorded into.
/// The figure harnesses aggregate these into the paper's series.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Wall-clock nanoseconds per search operation.
    pub search_ns: Vec<u64>,
    /// Wall-clock nanoseconds per ride-creation operation.
    pub create_ns: Vec<u64>,
    /// Wall-clock nanoseconds per booking attempt.
    pub book_ns: Vec<u64>,
    /// Searches issued (looks).
    pub looks: u64,
    /// Total matches returned across searches.
    pub matches_returned: u64,
    /// Requests served by booking an existing ride.
    pub booked: u64,
    /// Requests that created a new ride (a new car on the road).
    pub created: u64,
    /// Matches that went stale between search and booking.
    pub stale_matches: u64,
    /// Requests that could neither book nor create.
    pub unservable: u64,
    /// Realised booking detours, metres.
    pub detour_actual_m: Vec<f64>,
    /// Search-time detour estimates, metres.
    pub detour_estimated_m: Vec<f64>,
    /// Rider walking distances, metres.
    pub walk_m: Vec<f64>,
    /// Per booking: how far the realised detour exceeded the ride's
    /// remaining detour *limit* (0 when the limit held) — the paper's
    /// "detour limit exceeded by at most ..." quantity.
    pub detour_excess_m: Vec<f64>,
    /// Per booking: scheduled pick-up wait, seconds (pick-up ETA minus
    /// request time; only bookings with a finite ETA contribute).
    pub wait_s: Vec<f64>,
    /// Wall-clock nanoseconds per dispatch-window flush (generate +
    /// assign + commit). Empty for immediate (first-match) dispatch.
    pub window_ns: Vec<u64>,
    /// Requests per dispatch-window flush, aligned with
    /// [`SimReport::window_ns`].
    pub window_sizes: Vec<u64>,
    /// Batch commits rejected by the live-engine feasibility re-check
    /// (the candidate went stale within its window).
    pub stale_commits: u64,
    /// Improving local-search moves (2-swaps + eject-reinserts) the
    /// assignment stage applied.
    pub swaps: u64,
    /// Per-request booking decisions, in replay order for the serial
    /// driver (interleaved across threads for the parallel one — sort
    /// by trip id before comparing).
    pub decisions: Vec<Decision>,
    /// The registry this run recorded into: per-phase `sim.*`
    /// histograms, plus the backend's own metrics (`engine.*` /
    /// `tshare.*` / `lock.*`) when the backend exposes its registry.
    pub registry: Option<Arc<Registry>>,
}

impl SimReport {
    /// Fold another report into this one: latency samples are
    /// concatenated, counters summed. Used by the parallel driver to
    /// combine per-thread partial reports; the registry (shared by all
    /// threads) is kept from whichever side has one.
    pub fn merge(&mut self, other: SimReport) {
        self.search_ns.extend(other.search_ns);
        self.create_ns.extend(other.create_ns);
        self.book_ns.extend(other.book_ns);
        self.looks += other.looks;
        self.matches_returned += other.matches_returned;
        self.booked += other.booked;
        self.created += other.created;
        self.stale_matches += other.stale_matches;
        self.unservable += other.unservable;
        self.detour_actual_m.extend(other.detour_actual_m);
        self.detour_estimated_m.extend(other.detour_estimated_m);
        self.walk_m.extend(other.walk_m);
        self.detour_excess_m.extend(other.detour_excess_m);
        self.wait_s.extend(other.wait_s);
        self.window_ns.extend(other.window_ns);
        self.window_sizes.extend(other.window_sizes);
        self.stale_commits += other.stale_commits;
        self.swaps += other.swaps;
        self.decisions.extend(other.decisions);
        if self.registry.is_none() {
            self.registry = other.registry;
        }
    }

    /// Detour-approximation errors `actual − estimated` (clamped at 0),
    /// metres — the quantity Figure 3a plots against ε.
    pub fn detour_errors_m(&self) -> Vec<f64> {
        self.detour_actual_m
            .iter()
            .zip(&self.detour_estimated_m)
            .map(|(a, e)| (a - e).max(0.0))
            .collect()
    }

    /// Share of requests served by sharing (booked / (booked+created)).
    pub fn share_rate(&self) -> f64 {
        let total = self.booked + self.created;
        if total == 0 {
            0.0
        } else {
            self.booked as f64 / total as f64
        }
    }

    /// Service rate: the fraction of **all** requests served by pooling
    /// into an existing ride (booked / (booked+created+unservable)).
    /// This is the quantity batch-window assignment tries to raise —
    /// every request it pools is one fewer car on the road — and the
    /// one fig7 / the CI dispatch gate compare across policies.
    /// (Created rides also serve their rider; they are counted by
    /// [`SimReport::share_rate`]'s denominator, not here.)
    pub fn service_rate(&self) -> f64 {
        let total = self.booked + self.created + self.unservable;
        if total == 0 {
            0.0
        } else {
            self.booked as f64 / total as f64
        }
    }

    /// Mean realised booking detour, metres (0 with no bookings).
    pub fn mean_detour_m(&self) -> f64 {
        if self.detour_actual_m.is_empty() {
            0.0
        } else {
            self.detour_actual_m.iter().sum::<f64>() / self.detour_actual_m.len() as f64
        }
    }

    /// Mean scheduled pick-up wait, seconds (0 with no finite ETAs).
    pub fn mean_wait_s(&self) -> f64 {
        if self.wait_s.is_empty() {
            0.0
        } else {
            self.wait_s.iter().sum::<f64>() / self.wait_s.len() as f64
        }
    }

    /// p99 of the *amortized* per-request dispatch cost, nanoseconds:
    /// for a batch run, each flushed window contributes
    /// `window_ns / batch_size` once per request it carried; for an
    /// immediate run (no windows recorded) every request is its own
    /// window, so this degrades to the p99 search latency.
    pub fn amortized_dispatch_p99_ns(&self) -> f64 {
        if self.window_ns.is_empty() {
            return percentile_ns(&self.search_ns, 99.0);
        }
        let mut per_req: Vec<f64> = Vec::new();
        for (ns, sz) in self.window_ns.iter().zip(&self.window_sizes) {
            let amortized = *ns as f64 / (*sz).max(1) as f64;
            for _ in 0..(*sz).max(1) {
                per_req.push(amortized);
            }
        }
        percentile(&per_req, 99.0)
    }

    /// Quality deltas of this run against a baseline (by convention the
    /// first-match run over the same trips) — the report's
    /// "service-rate / detour / wait vs first-match" comparison.
    pub fn deltas_vs(&self, baseline: &SimReport) -> DispatchDeltas {
        let base_rate = baseline.service_rate();
        DispatchDeltas {
            service_rate_x: if base_rate > 0.0 {
                self.service_rate() / base_rate
            } else if self.service_rate() > 0.0 {
                f64::INFINITY
            } else {
                1.0
            },
            service_rate_delta: self.service_rate() - base_rate,
            mean_detour_delta_m: self.mean_detour_m() - baseline.mean_detour_m(),
            mean_wait_delta_s: self.mean_wait_s() - baseline.mean_wait_s(),
        }
    }

    /// Total wall-clock seconds spent in searches.
    pub fn total_search_s(&self) -> f64 {
        self.search_ns.iter().sum::<u64>() as f64 / 1e9
    }

    /// Total wall-clock seconds spent in creations.
    pub fn total_create_s(&self) -> f64 {
        self.create_ns.iter().sum::<u64>() as f64 / 1e9
    }

    /// Total wall-clock seconds spent in bookings.
    pub fn total_book_s(&self) -> f64 {
        self.book_ns.iter().sum::<u64>() as f64 / 1e9
    }

    /// Mean search latency in milliseconds.
    pub fn mean_search_ms(&self) -> f64 {
        if self.search_ns.is_empty() {
            0.0
        } else {
            self.search_ns.iter().sum::<u64>() as f64 / self.search_ns.len() as f64 / 1e6
        }
    }

    /// One human-readable line per simulation phase with registry-backed
    /// percentiles, for operator-facing report output.
    pub fn phase_summary(&self) -> Vec<String> {
        let Some(reg) = &self.registry else { return Vec::new() };
        ["sim.search_ns", "sim.book_ns", "sim.create_ns", "sim.track_ns"]
            .iter()
            .filter_map(|name| {
                let h = reg.histogram(name);
                (h.count() > 0).then(|| format!("{name}: {}", h.snapshot().format_ns()))
            })
            .collect()
    }

    /// The whole report as a JSON object (outcome counters, derived
    /// rates, latency percentiles, quality distributions, and — under
    /// `"metrics"` — the full registry snapshot when one is attached).
    ///
    /// The schema is documented in `EXPERIMENTS.md`.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        for (key, v) in [
            ("looks", self.looks),
            ("matches_returned", self.matches_returned),
            ("booked", self.booked),
            ("created", self.created),
            ("stale_matches", self.stale_matches),
            ("unservable", self.unservable),
        ] {
            w.key(key);
            w.number_u64(v);
        }
        w.key("share_rate");
        w.number_f64(self.share_rate());
        w.key("service_rate");
        w.number_f64(self.service_rate());
        w.key("stale_commits");
        w.number_u64(self.stale_commits);
        w.key("swaps");
        w.number_u64(self.swaps);
        w.key("windows");
        w.number_u64(self.window_ns.len() as u64);
        w.key("total_search_s");
        w.number_f64(self.total_search_s());
        w.key("total_create_s");
        w.number_f64(self.total_create_s());
        w.key("total_book_s");
        w.number_f64(self.total_book_s());

        let lat = |w: &mut JsonWriter, key: &str, ns: &[u64]| {
            w.key(key);
            w.begin_object();
            w.key("count");
            w.number_u64(ns.len() as u64);
            for (q, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
                w.key(q);
                w.number_f64(percentile_ns(ns, p));
            }
            w.key("max");
            w.number_u64(ns.iter().copied().max().unwrap_or(0));
            w.end_object();
        };
        lat(&mut w, "search_latency_ns", &self.search_ns);
        lat(&mut w, "create_latency_ns", &self.create_ns);
        lat(&mut w, "book_latency_ns", &self.book_ns);

        let dist = |w: &mut JsonWriter, key: &str, vals: &[f64]| {
            w.key(key);
            w.begin_object();
            w.key("count");
            w.number_u64(vals.len() as u64);
            for (q, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0), ("max", 100.0)] {
                w.key(q);
                w.number_f64(percentile(vals, p));
            }
            w.end_object();
        };
        dist(&mut w, "detour_actual_m", &self.detour_actual_m);
        dist(&mut w, "detour_excess_m", &self.detour_excess_m);
        dist(&mut w, "walk_m", &self.walk_m);
        dist(&mut w, "wait_s", &self.wait_s);

        if let Some(reg) = &self.registry {
            w.key("metrics");
            w.raw(&reg.snapshot_json());
        }
        w.end_object();
        w.finish()
    }
}

/// Quality deltas of one dispatch policy against a baseline run over
/// the same trips (produced by [`SimReport::deltas_vs`]; serialized
/// into `results/BENCH_dispatch.json`, schema in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchDeltas {
    /// Service-rate ratio vs the baseline (≥ 1.0 means the policy
    /// pooled at least as many requests).
    pub service_rate_x: f64,
    /// Absolute service-rate difference vs the baseline.
    pub service_rate_delta: f64,
    /// Mean-detour difference, metres (negative = shorter detours).
    pub mean_detour_delta_m: f64,
    /// Mean-wait difference, seconds (negative = shorter waits).
    pub mean_wait_delta_s: f64,
}

impl DispatchDeltas {
    /// This delta record as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("service_rate_x");
        w.number_f64(self.service_rate_x);
        w.key("service_rate_delta");
        w.number_f64(self.service_rate_delta);
        w.key("mean_detour_delta_m");
        w.number_f64(self.mean_detour_delta_m);
        w.key("mean_wait_delta_s");
        w.number_f64(self.mean_wait_delta_s);
        w.end_object();
        w.finish()
    }
}

/// The `p`-th percentile (0–100) of nanosecond samples, in
/// nanoseconds (convenience wrapper over [`percentile`]).
pub fn percentile_ns(values: &[u64], p: f64) -> f64 {
    let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
    percentile(&v, p)
}

/// The `p`-th percentile (0–100) of `values`, by linear interpolation
/// on the sorted data. Returns 0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_ns_converts() {
        assert_eq!(percentile_ns(&[100u64, 200, 300], 100.0), 300.0);
    }

    #[test]
    fn percentiles() {
        let v: Vec<f64> = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
        let empty: Vec<f64> = vec![];
        assert_eq!(percentile(&empty, 50.0), 0.0);
        let one = vec![7.0f64];
        assert_eq!(percentile(&one, 95.0), 7.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let v: Vec<f64> = vec![40.0, 10.0, 30.0, 20.0];
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 0.0), 10.0);
    }

    #[test]
    fn detour_errors_clamp() {
        let r = SimReport {
            detour_actual_m: vec![100.0, 50.0],
            detour_estimated_m: vec![80.0, 60.0],
            ..Default::default()
        };
        assert_eq!(r.detour_errors_m(), vec![20.0, 0.0]);
    }

    #[test]
    fn share_rate() {
        let r = SimReport { booked: 30, created: 70, ..Default::default() };
        assert!((r.share_rate() - 0.3).abs() < 1e-12);
        assert_eq!(SimReport::default().share_rate(), 0.0);
    }

    #[test]
    fn totals() {
        let r = SimReport {
            search_ns: vec![1_000_000, 3_000_000],
            ..Default::default()
        };
        assert!((r.total_search_s() - 0.004).abs() < 1e-12);
        assert!((r.mean_search_ms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_has_counters_and_metrics() {
        let reg = Arc::new(Registry::new());
        reg.histogram("sim.search_ns").record(1_000);
        let r = SimReport {
            looks: 5,
            booked: 2,
            created: 3,
            search_ns: vec![500, 1_500],
            registry: Some(reg),
            ..Default::default()
        };
        let json = r.to_json();
        assert!(json.contains("\"looks\":5"), "{json}");
        assert!(json.contains("\"share_rate\":0.4"), "{json}");
        assert!(json.contains("\"metrics\":{"), "{json}");
        assert!(json.contains("\"sim.search_ns\""), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn phase_summary_lists_only_recorded_phases() {
        let reg = Arc::new(Registry::new());
        reg.histogram("sim.search_ns").record(2_000);
        let r = SimReport { registry: Some(reg), ..Default::default() };
        let lines = r.phase_summary();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].starts_with("sim.search_ns:"));
        assert!(SimReport::default().phase_summary().is_empty());
    }
}
