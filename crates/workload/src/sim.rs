//! The ride-sharing simulation framework of §X.A.2, generic over the
//! system under test.
//!
//! The replay loop itself lives in [`crate::dispatch`]: this module
//! keeps the configuration ([`SimConfig`]), the system-under-test
//! abstraction ([`RideBackend`]) and the classic entry point
//! ([`run_simulation`]), which drives the paper's first-match protocol
//! through the pipeline.

use std::sync::Arc;

use xar_core::{Reason, SearchExplain};
use xar_obs::Registry;

use crate::dispatch::{Candidate, DispatchPolicy, FirstMatch};
use crate::report::SimReport;
use crate::trips::Trip;

/// Simulation parameters shared by both systems.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Rider walking threshold per request, metres (XAR only; T-Share
    /// picks riders up at their location).
    pub walk_limit_m: f64,
    /// Pick-up window width: a request at `t` accepts pick-ups in
    /// `[t, t + window_s]`.
    pub window_s: f64,
    /// Detour budget given to newly created rides, metres.
    pub detour_limit_m: f64,
    /// Seats offered by a newly created ride (taxi capacity 4 including
    /// the driver ⇒ 3).
    pub seats: u8,
    /// Matches requested per search (`usize::MAX` = all).
    pub k: usize,
    /// Run a tracking sweep every this many simulated seconds (`None`
    /// disables tracking).
    pub track_every_s: Option<f64>,
    /// Extra *look* searches issued per booking — the look-to-book
    /// ratio `r` of Figure 5b is `lookups_per_request + 1`.
    pub lookups_per_request: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            walk_limit_m: 800.0,
            window_s: 1_200.0,
            detour_limit_m: 4_000.0,
            seats: 3,
            k: usize::MAX,
            track_every_s: Some(600.0),
            lookups_per_request: 0,
        }
    }
}

/// A ride-sharing system under simulation. Implemented for XAR and for
/// the T-Share baseline in [`crate::backend`].
pub trait RideBackend {
    /// An opaque match handle.
    type Match;

    /// Search for rides serving `trip`; up to `k` matches, best first.
    fn search(&mut self, trip: &Trip, cfg: &SimConfig) -> Vec<Self::Match>;
    /// [`RideBackend::search`], also reporting per-check rejection
    /// attribution for the wide-event plane. The default wraps plain
    /// `search` with a synthetic explain (candidates = matches), which
    /// keeps the reason taxonomy closed — a matchless search decodes
    /// to [`Reason::NoClusterCandidates`] — for backends that cannot
    /// attribute more finely.
    fn search_explained(
        &mut self,
        trip: &Trip,
        cfg: &SimConfig,
    ) -> (Vec<Self::Match>, SearchExplain) {
        let matches = self.search(trip, cfg);
        let explain =
            SearchExplain { candidates: matches.len() as u32, ..SearchExplain::default() };
        (matches, explain)
    }
    /// Book a match; `false` if the booking failed (stale match).
    fn book(&mut self, m: &Self::Match, cfg: &SimConfig) -> BookResult;
    /// Book a match after re-validating its feasibility (seats +
    /// detour budget) against the live engine — the commit primitive
    /// of batched dispatch, where candidates can go stale between
    /// search and commit. Defaults to plain [`RideBackend::book`] for
    /// backends whose `book` already re-checks everything it needs.
    fn book_checked(&mut self, m: &Self::Match, cfg: &SimConfig) -> BookResult {
        self.book(m, cfg)
    }
    /// Commit a whole batch window's picked matches at once, results
    /// index-aligned with `ms`. Backends with per-write publication
    /// cost override this to coalesce it (one snapshot publish per
    /// touched shard instead of per booking); the default is the
    /// sequential loop, so semantics never differ.
    fn book_checked_batch(&mut self, ms: &[&Self::Match], cfg: &SimConfig) -> Vec<BookResult> {
        ms.iter().map(|m| self.book_checked(m, cfg)).collect()
    }
    /// Reduce a match to the [`Candidate`] edge the assignment stage
    /// scores: target ride, score (lower better), estimated detour.
    /// The default is a zero edge, fine for backends never driven
    /// through a batching policy.
    fn describe(_m: &Self::Match) -> Candidate {
        Candidate { ride: 0, score: 0.0, detour_m: 0.0 }
    }
    /// Offer `trip` as a new ride; on failure, the typed
    /// [`Reason`] the request becomes unservable with (e.g.
    /// unroutable end-points).
    fn create(&mut self, trip: &Trip, cfg: &SimConfig) -> Result<(), Reason>;
    /// Advance the system clock (tracking sweep).
    fn track(&mut self, now_s: f64);
    /// The backend's own metric registry, if it keeps one. When
    /// present, [`run_simulation`] records its `sim.*` phase metrics
    /// into the same registry, so one snapshot covers the whole stack
    /// (simulator phases + engine internals + lock telemetry).
    fn registry(&self) -> Option<Arc<Registry>> {
        None
    }
    /// Short system name stamped on every request trace (`system`
    /// attribute), so one trace file can interleave XAR and T-Share
    /// timelines distinguishably.
    fn name(&self) -> &'static str {
        "backend"
    }
}

/// Outcome of one booking attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BookResult {
    /// Booked; carries `(actual detour m, estimated detour m,
    /// walked m)` for quality accounting.
    Booked {
        /// Realised route extension, metres.
        actual_detour_m: f64,
        /// Search-time detour estimate, metres.
        estimated_detour_m: f64,
        /// Rider walking, metres.
        walk_m: f64,
        /// The ride's remaining detour budget before the booking,
        /// metres.
        budget_before_m: f64,
        /// Scheduled pick-up time, absolute simulated seconds (`NaN`
        /// when the backend cannot predict it).
        pickup_eta_s: f64,
        /// Scheduled drop-off time, absolute simulated seconds (`NaN`
        /// when unknown — T-Share does not expose it).
        dropoff_eta_s: f64,
    },
    /// The booking failed, with the typed [`Reason`] (ride full,
    /// detour budget gone, departed, retired); the simulation falls
    /// through to ride creation.
    Failed(Reason),
}

/// Run the §X.A.2 protocol over `trips`: search; book the best match
/// if any (falling through the match list on stale entries); otherwise
/// create a new ride. Per-operation wall-clock latencies are recorded
/// in the returned report.
///
/// When the global trace recorder is enabled, every trip becomes one
/// `request` trace (born → searched → offered → booked/created/
/// unservable), every tracking sweep one `track` trace, and booked
/// requests later receive `request.picked_up` / `request.dropped_off`
/// lifecycle instants as simulated time passes their ETAs — a single
/// rider's full timeline is reconstructable from the export.
pub fn run_simulation<B: RideBackend>(
    backend: &mut B,
    trips: &[Trip],
    cfg: &SimConfig,
) -> SimReport {
    run_simulation_with(backend, trips, cfg, &mut FirstMatch)
}

/// [`run_simulation`] under an explicit [`DispatchPolicy`]: the
/// three-stage pipeline (generate candidates → assign → commit) with
/// `policy` in the assignment seat.
pub fn run_simulation_with<B: RideBackend, P: DispatchPolicy + ?Sized>(
    backend: &mut B,
    trips: &[Trip],
    cfg: &SimConfig,
    policy: &mut P,
) -> SimReport {
    crate::dispatch::run_dispatch(backend, trips, cfg, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trips::{generate_trips, TripGenConfig};
    use xar_roadnet::CityConfig;

    /// A scripted backend to validate the protocol mechanics.
    struct Scripted {
        /// Per call: how many matches search returns.
        match_counts: Vec<usize>,
        searches: usize,
        books: usize,
        creates: usize,
        tracks: Vec<f64>,
        fail_first_booking: bool,
    }

    impl RideBackend for Scripted {
        type Match = ();

        fn search(&mut self, _t: &Trip, _c: &SimConfig) -> Vec<()> {
            let n = self.match_counts.get(self.searches).copied().unwrap_or(0);
            self.searches += 1;
            vec![(); n]
        }
        fn book(&mut self, _m: &(), _c: &SimConfig) -> BookResult {
            self.books += 1;
            if self.fail_first_booking && self.books == 1 {
                BookResult::Failed(Reason::CapacityFull)
            } else {
                BookResult::Booked {
                    actual_detour_m: 10.0,
                    estimated_detour_m: 8.0,
                    walk_m: 50.0,
                    budget_before_m: 100.0,
                    pickup_eta_s: 0.0,
                    dropoff_eta_s: 0.0,
                }
            }
        }
        fn create(&mut self, _t: &Trip, _c: &SimConfig) -> Result<(), Reason> {
            self.creates += 1;
            Ok(())
        }
        fn track(&mut self, now: f64) {
            self.tracks.push(now);
        }
    }

    fn trips(n: usize) -> Vec<Trip> {
        let g = CityConfig::test_city(1).generate();
        generate_trips(&g, &TripGenConfig { count: n, ..Default::default() })
    }

    #[test]
    fn protocol_books_else_creates() {
        let ts = trips(3);
        let mut b = Scripted {
            match_counts: vec![0, 2, 0],
            searches: 0,
            books: 0,
            creates: 0,
            tracks: vec![],
            fail_first_booking: false,
        };
        let cfg = SimConfig { track_every_s: None, ..Default::default() };
        let r = run_simulation(&mut b, &ts, &cfg);
        assert_eq!(b.searches, 3);
        assert_eq!(r.booked, 1);
        assert_eq!(r.created, 2);
        assert_eq!(b.books, 1, "first match books, second never tried");
        assert_eq!(r.matches_returned, 2);
        assert_eq!(r.looks, 3);
    }

    #[test]
    fn stale_match_falls_through_to_next() {
        let ts = trips(1);
        let mut b = Scripted {
            match_counts: vec![2],
            searches: 0,
            books: 0,
            creates: 0,
            tracks: vec![],
            fail_first_booking: true,
        };
        let cfg = SimConfig { track_every_s: None, ..Default::default() };
        let r = run_simulation(&mut b, &ts, &cfg);
        assert_eq!(b.books, 2);
        assert_eq!(r.booked, 1);
        assert_eq!(r.stale_matches, 1);
        assert_eq!(r.created, 0);
    }

    #[test]
    fn all_stale_matches_create_instead() {
        let ts = trips(1);
        struct AllStale {
            books: usize,
        }
        impl RideBackend for AllStale {
            type Match = ();
            fn search(&mut self, _: &Trip, _: &SimConfig) -> Vec<()> {
                vec![(); 3]
            }
            fn book(&mut self, _: &(), _: &SimConfig) -> BookResult {
                self.books += 1;
                BookResult::Failed(Reason::WindowExpired)
            }
            fn create(&mut self, _: &Trip, _: &SimConfig) -> Result<(), Reason> {
                Ok(())
            }
            fn track(&mut self, _: f64) {}
        }
        let mut b = AllStale { books: 0 };
        let cfg = SimConfig { track_every_s: None, ..Default::default() };
        let r = run_simulation(&mut b, &ts, &cfg);
        assert_eq!(b.books, 3);
        assert_eq!(r.created, 1);
    }

    #[test]
    fn tracking_sweeps_at_interval() {
        let ts = trips(50);
        let mut b = Scripted {
            match_counts: vec![],
            searches: 0,
            books: 0,
            creates: 0,
            tracks: vec![],
            fail_first_booking: false,
        };
        let cfg = SimConfig { track_every_s: Some(3_600.0), ..Default::default() };
        run_simulation(&mut b, &ts, &cfg);
        assert!(!b.tracks.is_empty());
        for w in b.tracks.windows(2) {
            assert!((w[1] - w[0] - 3_600.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lookups_multiply_searches() {
        let ts = trips(4);
        let mut b = Scripted {
            match_counts: vec![],
            searches: 0,
            books: 0,
            creates: 0,
            tracks: vec![],
            fail_first_booking: false,
        };
        let cfg =
            SimConfig { track_every_s: None, lookups_per_request: 9, ..Default::default() };
        let r = run_simulation(&mut b, &ts, &cfg);
        assert_eq!(b.searches, 40, "10 searches per request (r = 10)");
        assert_eq!(r.looks, 40);
    }
}
