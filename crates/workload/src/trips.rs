//! Synthetic taxi-trip generator (the NYC dataset substitute).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xar_geo::GeoPoint;
use xar_roadnet::{NodeId, RoadGraph};

/// One taxi trip = one ride-share request: "every trip in the dataset
/// has a pickup time, a pickup location and a dropoff location".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trip {
    /// Dense trip id.
    pub id: u64,
    /// Request (pickup) time, seconds since midnight.
    pub pickup_s: f64,
    /// Pickup location.
    pub pickup: GeoPoint,
    /// Drop-off location.
    pub dropoff: GeoPoint,
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct TripGenConfig {
    /// Number of trips for the simulated day.
    pub count: usize,
    /// Number of spatial hotspots (transport hubs, business districts).
    pub hotspots: usize,
    /// Zipf exponent of the hotspot popularity distribution.
    pub zipf_exponent: f64,
    /// Fraction of trip end-points drawn from hotspots (the rest are
    /// uniform over the network).
    pub hotspot_fraction: f64,
    /// Scatter radius around a hotspot, metres.
    pub hotspot_scatter_m: f64,
    /// Minimum crow-flies trip length, metres (NYC taxi trips are not
    /// one-block hops).
    pub min_trip_m: f64,
    /// Maximum crow-flies trip length, metres (`f64::INFINITY` = no
    /// cap). A finite cap keeps trip lengths — and therefore ride
    /// routes and their cluster fan-out — constant as the city grows,
    /// which the write micro-bench's constant-density sweep relies on.
    pub max_trip_m: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TripGenConfig {
    fn default() -> Self {
        Self {
            count: 10_000,
            hotspots: 12,
            zipf_exponent: 1.0,
            hotspot_fraction: 0.6,
            hotspot_scatter_m: 300.0,
            min_trip_m: 800.0,
            max_trip_m: f64::INFINITY,
            seed: 0x7A11,
        }
    }
}

/// Sample a pickup time with the classic bimodal rush-hour profile:
/// morning peak around 08:30, evening peak around 18:00, plus a uniform
/// daytime base.
fn sample_time_s(rng: &mut StdRng) -> f64 {
    let roll = rng.random::<f64>();
    // Approximate normal via the sum of 4 uniforms (Irwin–Hall).
    let gauss =
        |rng: &mut StdRng| (0..4).map(|_| rng.random::<f64>()).sum::<f64>() / 2.0 - 1.0; // ~N(0, 0.29)
    let t = if roll < 0.35 {
        8.5 * 3600.0 + gauss(rng) * 4_500.0
    } else if roll < 0.70 {
        18.0 * 3600.0 + gauss(rng) * 5_400.0
    } else {
        5.0 * 3600.0 + rng.random::<f64>() * 18.0 * 3600.0
    };
    t.clamp(0.0, 86_399.0)
}

/// Generate a day of trips over `graph`, sorted by pickup time.
pub fn generate_trips(graph: &RoadGraph, cfg: &TripGenConfig) -> Vec<Trip> {
    assert!(graph.node_count() > 1, "need a road network");
    assert!(
        (0.0..=1.0).contains(&cfg.hotspot_fraction),
        "hotspot fraction must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = graph.node_count() as u32;

    // Hotspot centres: random nodes; popularity ~ Zipf(rank).
    let hotspots: Vec<NodeId> =
        (0..cfg.hotspots).map(|_| NodeId(rng.random_range(0..n))).collect();
    let weights: Vec<f64> = (1..=cfg.hotspots.max(1))
        .map(|r| 1.0 / (r as f64).powf(cfg.zipf_exponent))
        .collect();
    let total_w: f64 = weights.iter().sum();

    let pick_endpoint = |rng: &mut StdRng| -> GeoPoint {
        if !hotspots.is_empty() && rng.random::<f64>() < cfg.hotspot_fraction {
            let x = rng.random::<f64>() * total_w;
            let mut acc = 0.0;
            let mut idx = 0;
            for (i, w) in weights.iter().enumerate() {
                acc += w;
                if x <= acc {
                    idx = i;
                    break;
                }
            }
            let base = graph.point(hotspots[idx]);
            let bearing = rng.random::<f64>() * 360.0;
            let dist = rng.random::<f64>() * cfg.hotspot_scatter_m;
            base.destination(bearing, dist)
        } else {
            graph.point(NodeId(rng.random_range(0..n)))
        }
    };

    assert!(
        cfg.max_trip_m > cfg.min_trip_m,
        "max_trip_m ({}) must exceed min_trip_m ({})",
        cfg.max_trip_m,
        cfg.min_trip_m
    );
    let mut trips = Vec::with_capacity(cfg.count);
    let mut id = 0u64;
    let mut attempts = 0usize;
    while trips.len() < cfg.count {
        attempts += 1;
        assert!(
            attempts <= cfg.count.saturating_mul(10_000),
            "trip length band [{}, {}] m rejects virtually every sampled pair on this network",
            cfg.min_trip_m,
            cfg.max_trip_m
        );
        let pickup = pick_endpoint(&mut rng);
        let dropoff = pick_endpoint(&mut rng);
        let len_m = pickup.haversine_m(&dropoff);
        if len_m < cfg.min_trip_m || len_m > cfg.max_trip_m {
            continue;
        }
        trips.push(Trip { id, pickup_s: sample_time_s(&mut rng), pickup, dropoff });
        id += 1;
    }
    trips.sort_by(|a, b| a.pickup_s.total_cmp(&b.pickup_s).then(a.id.cmp(&b.id)));
    trips
}

/// The trips whose pickup time falls in `[from_s, to_s)` — e.g. the
/// paper's "100,000 trips ... requesting pick-ups between 6am - 12pm"
/// subset.
pub fn time_slice(trips: &[Trip], from_s: f64, to_s: f64) -> Vec<Trip> {
    trips.iter().copied().filter(|t| t.pickup_s >= from_s && t.pickup_s < to_s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xar_roadnet::CityConfig;

    fn graph() -> RoadGraph {
        CityConfig::test_city(17).generate()
    }

    #[test]
    fn count_and_ordering() {
        let g = graph();
        let trips = generate_trips(&g, &TripGenConfig { count: 2_000, ..Default::default() });
        assert_eq!(trips.len(), 2_000);
        for w in trips.windows(2) {
            assert!(w[0].pickup_s <= w[1].pickup_s);
        }
    }

    #[test]
    fn trip_length_band_is_respected() {
        let g = graph();
        let trips = generate_trips(
            &g,
            &TripGenConfig { count: 300, min_trip_m: 600.0, max_trip_m: 1_500.0, ..Default::default() },
        );
        assert_eq!(trips.len(), 300);
        for t in &trips {
            let d = t.pickup.haversine_m(&t.dropoff);
            assert!((600.0..=1_500.0).contains(&d), "trip length {d} m outside band");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = graph();
        let a = generate_trips(&g, &TripGenConfig { count: 500, ..Default::default() });
        let b = generate_trips(&g, &TripGenConfig { count: 500, ..Default::default() });
        assert_eq!(a, b);
        let c = generate_trips(&g, &TripGenConfig { count: 500, seed: 9, ..Default::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn trips_respect_min_length() {
        let g = graph();
        let cfg = TripGenConfig { count: 1_000, min_trip_m: 900.0, ..Default::default() };
        for t in generate_trips(&g, &cfg) {
            assert!(t.pickup.haversine_m(&t.dropoff) >= 900.0);
        }
    }

    #[test]
    fn times_are_within_the_day_and_bimodal() {
        let g = graph();
        let trips = generate_trips(&g, &TripGenConfig { count: 20_000, ..Default::default() });
        let mut morning = 0usize; // 7-10 am
        let mut night = 0usize; // 1-4 am
        for t in &trips {
            assert!((0.0..86_400.0).contains(&t.pickup_s));
            if (7.0 * 3600.0..10.0 * 3600.0).contains(&t.pickup_s) {
                morning += 1;
            }
            if (1.0 * 3600.0..4.0 * 3600.0).contains(&t.pickup_s) {
                night += 1;
            }
        }
        // Rush hour must be several times denser than the small hours.
        assert!(morning > night * 3, "morning {morning} vs night {night}");
    }

    #[test]
    fn hotspots_skew_the_spatial_distribution() {
        let g = graph();
        let cfg = TripGenConfig { count: 5_000, hotspot_fraction: 0.9, ..Default::default() };
        let trips = generate_trips(&g, &cfg);
        // Bucket pickups into a coarse grid; the max bucket should hold
        // far more than a uniform share.
        use std::collections::HashMap;
        let mut buckets: HashMap<(i64, i64), usize> = HashMap::new();
        for t in &trips {
            let key = ((t.pickup.lat * 200.0) as i64, (t.pickup.lon * 200.0) as i64);
            *buckets.entry(key).or_default() += 1;
        }
        let max = buckets.values().max().copied().unwrap_or(0);
        let uniform_share = trips.len() / buckets.len().max(1);
        assert!(max > uniform_share * 3, "max bucket {max}, uniform {uniform_share}");
    }

    #[test]
    fn time_slice_selects_window() {
        let g = graph();
        let trips = generate_trips(&g, &TripGenConfig { count: 3_000, ..Default::default() });
        let slice = time_slice(&trips, 6.0 * 3600.0, 12.0 * 3600.0);
        assert!(!slice.is_empty());
        assert!(slice.len() < trips.len());
        for t in &slice {
            assert!((6.0 * 3600.0..12.0 * 3600.0).contains(&t.pickup_s));
        }
    }
}
