//! Multi-threaded closed-loop simulation driver.
//!
//! The serial driver ([`crate::sim::run_simulation`]) replays trips
//! from one thread — fine for measuring algorithmic latencies, useless
//! for measuring engine *scaling*. This module drives a shard-safe
//! backend from `N` closed-loop worker threads:
//!
//! * [`ConcurrentBackend`] is the `&self` twin of
//!   [`crate::sim::RideBackend`]: every operation takes a shared
//!   reference, so one backend instance serves all threads.
//!   [`ShardedXarBackend`] implements it over
//!   [`xar_core::ShardedXarEngine`].
//! * Trips are dealt **round-robin** (thread `t` replays trips
//!   `t, t+N, t+2N, …`), so each thread's private stream stays sorted
//!   by request time and the interleaving across threads approximates
//!   the serial arrival order — no thread runs ahead into "the future"
//!   by more than its stride.
//! * Each thread runs the §X.A.2 protocol (search; book best, falling
//!   through stale matches; else create) against the shared backend and
//!   accumulates a private [`SimReport`]; the partial reports are
//!   merged after the join. Outcome counters
//!   (`sim.requests{outcome=…}`, `sim.requests_total`) are recorded
//!   into the shared registry as the run progresses, so live dashboards
//!   see the parallel run exactly like a serial one.
//! * Thread 0 doubles as the **tracker**: it advances simulated time
//!   and runs the periodic tracking sweeps, mirroring a deployment
//!   where tracking is one background task competing with foreground
//!   request traffic.

use std::sync::Arc;
use std::time::Instant;

use xar_core::{Reason, RideMatch, RideOffer, RideRequest, SearchExplain, ShardedXarEngine};
use xar_obs::Registry;

use crate::dispatch::{Candidate, DispatchSpec};
use crate::report::SimReport;
use crate::sim::{BookResult, RideBackend, SimConfig};
use crate::trips::Trip;

/// A ride-sharing system safe to drive from many threads at once: the
/// `&self` twin of [`crate::sim::RideBackend`].
pub trait ConcurrentBackend: Sync {
    /// An opaque match handle.
    type Match: Send;

    /// Search for rides serving `trip`; up to `k` matches, best first.
    fn search(&self, trip: &Trip, cfg: &SimConfig) -> Vec<Self::Match>;
    /// [`ConcurrentBackend::search`] with rejection attribution — see
    /// [`RideBackend::search_explained`]. The default wraps plain
    /// `search` with a synthetic explain (candidates = matches).
    fn search_explained(&self, trip: &Trip, cfg: &SimConfig) -> (Vec<Self::Match>, SearchExplain) {
        let matches = self.search(trip, cfg);
        let explain =
            SearchExplain { candidates: matches.len() as u32, ..SearchExplain::default() };
        (matches, explain)
    }
    /// Book a match; [`BookResult::Failed`] if it went stale.
    fn book(&self, m: &Self::Match, cfg: &SimConfig) -> BookResult;
    /// Book after re-validating feasibility against the live engine —
    /// see [`RideBackend::book_checked`]. Defaults to plain `book`.
    fn book_checked(&self, m: &Self::Match, cfg: &SimConfig) -> BookResult {
        self.book(m, cfg)
    }
    /// Commit a batch window's picked matches at once — see
    /// [`RideBackend::book_checked_batch`]. Defaults to the sequential
    /// loop; the sharded engine overrides it to publish once per
    /// touched shard.
    fn book_checked_batch(&self, ms: &[&Self::Match], cfg: &SimConfig) -> Vec<BookResult> {
        ms.iter().map(|m| self.book_checked(m, cfg)).collect()
    }
    /// Reduce a match to its assignment edge — see
    /// [`RideBackend::describe`].
    fn describe(_m: &Self::Match) -> Candidate {
        Candidate { ride: 0, score: 0.0, detour_m: 0.0 }
    }
    /// Offer `trip` as a new ride; on failure, the typed [`Reason`]
    /// the request becomes unservable with.
    fn create(&self, trip: &Trip, cfg: &SimConfig) -> Result<(), Reason>;
    /// Advance the system clock (tracking sweep).
    fn track(&self, now_s: f64);
    /// The backend's metric registry, when it keeps one.
    fn registry(&self) -> Option<Arc<Registry>> {
        None
    }
    /// Short system name for reports.
    fn name(&self) -> &'static str {
        "backend"
    }
}

/// One worker thread's view of a shared [`ConcurrentBackend`],
/// adapting it to the `&mut self` [`RideBackend`] interface the
/// dispatch driver runs against. Carries the run's shared registry so
/// every worker records `sim.*` / `dispatch.*` series into the same
/// snapshot even when the backend keeps none of its own.
struct WorkerBackend<'a, B: ConcurrentBackend> {
    inner: &'a B,
    registry: Arc<Registry>,
}

impl<B: ConcurrentBackend> RideBackend for WorkerBackend<'_, B> {
    type Match = B::Match;

    fn search(&mut self, trip: &Trip, cfg: &SimConfig) -> Vec<B::Match> {
        self.inner.search(trip, cfg)
    }
    fn search_explained(&mut self, trip: &Trip, cfg: &SimConfig) -> (Vec<B::Match>, SearchExplain) {
        self.inner.search_explained(trip, cfg)
    }
    fn book(&mut self, m: &B::Match, cfg: &SimConfig) -> BookResult {
        self.inner.book(m, cfg)
    }
    fn book_checked(&mut self, m: &B::Match, cfg: &SimConfig) -> BookResult {
        self.inner.book_checked(m, cfg)
    }
    fn book_checked_batch(&mut self, ms: &[&B::Match], cfg: &SimConfig) -> Vec<BookResult> {
        self.inner.book_checked_batch(ms, cfg)
    }
    fn describe(m: &B::Match) -> Candidate {
        B::describe(m)
    }
    fn create(&mut self, trip: &Trip, cfg: &SimConfig) -> Result<(), Reason> {
        self.inner.create(trip, cfg)
    }
    fn track(&mut self, now_s: f64) {
        self.inner.track(now_s);
    }
    fn registry(&self) -> Option<Arc<Registry>> {
        Some(Arc::clone(&self.registry))
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// The sharded XAR engine under parallel simulation.
pub struct ShardedXarBackend {
    /// The engine (public so harnesses can audit rides and stats after
    /// a run).
    pub engine: ShardedXarEngine,
}

impl ShardedXarBackend {
    /// Wrap an engine.
    pub fn new(engine: ShardedXarEngine) -> Self {
        Self { engine }
    }

    fn request(trip: &Trip, cfg: &SimConfig) -> RideRequest {
        RideRequest {
            source: trip.pickup,
            destination: trip.dropoff,
            window_start_s: trip.pickup_s,
            window_end_s: trip.pickup_s + cfg.window_s,
            walk_limit_m: cfg.walk_limit_m,
        }
    }
}

impl ConcurrentBackend for ShardedXarBackend {
    type Match = RideMatch;

    fn search(&self, trip: &Trip, cfg: &SimConfig) -> Vec<RideMatch> {
        self.engine.search(&Self::request(trip, cfg), cfg.k).unwrap_or_default()
    }

    fn search_explained(&self, trip: &Trip, cfg: &SimConfig) -> (Vec<RideMatch>, SearchExplain) {
        let mut explain = SearchExplain::default();
        let mut out = Vec::new();
        if self
            .engine
            .search_into_explained(&Self::request(trip, cfg), cfg.k, &mut out, &mut explain)
            .is_err()
        {
            out.clear();
        }
        (out, explain)
    }

    fn book(&self, m: &RideMatch, _cfg: &SimConfig) -> BookResult {
        crate::backend::book_result(self.engine.book(m))
    }

    fn book_checked(&self, m: &RideMatch, _cfg: &SimConfig) -> BookResult {
        crate::backend::book_result(self.engine.book_checked(m))
    }

    fn book_checked_batch(&self, ms: &[&RideMatch], _cfg: &SimConfig) -> Vec<BookResult> {
        self.engine
            .book_checked_batch(ms)
            .into_iter()
            .map(crate::backend::book_result)
            .collect()
    }

    fn describe(m: &RideMatch) -> Candidate {
        Candidate { ride: m.ride.0, score: m.walk_total_m(), detour_m: m.detour_est_m }
    }

    fn create(&self, trip: &Trip, cfg: &SimConfig) -> Result<(), Reason> {
        self.engine
            .create_ride(&RideOffer {
                source: trip.pickup,
                destination: trip.dropoff,
                departure_s: trip.pickup_s,
                seats: cfg.seats,
                detour_limit_m: cfg.detour_limit_m,
                driver: None,
                via: Vec::new(),
            })
            .map(|_| ())
            .map_err(|e| e.reason())
    }

    fn track(&self, now_s: f64) {
        self.engine.track_all(now_s);
    }

    fn registry(&self) -> Option<Arc<Registry>> {
        Some(self.engine.registry())
    }

    fn name(&self) -> &'static str {
        "xar-sharded"
    }
}

/// Replay `trips` through `backend` from `threads` closed-loop workers
/// (clamped to ≥ 1) and return the merged report plus per-thread
/// protocol side effects. Thread `t` replays every `threads`-th trip
/// starting at `t`; thread 0 additionally runs the tracking sweeps at
/// `cfg.track_every_s` intervals of simulated time.
///
/// With `threads == 1` this is the serial §X.A.2 protocol driven
/// through the `&self` backend interface (modulo request tracing, which
/// stays the serial driver's job).
pub fn run_parallel_simulation<B: ConcurrentBackend>(
    backend: &B,
    trips: &[Trip],
    cfg: &SimConfig,
    threads: usize,
) -> SimReport {
    run_parallel_dispatch(backend, trips, cfg, threads, DispatchSpec::First)
}

/// [`run_parallel_simulation`] under an explicit dispatch policy: each
/// worker runs its own policy instance (built from `spec`) over its
/// private trip slice, so batch windows form per worker — the engine
/// stays shared and every commit re-validates against it.
pub fn run_parallel_dispatch<B: ConcurrentBackend>(
    backend: &B,
    trips: &[Trip],
    cfg: &SimConfig,
    threads: usize,
    spec: DispatchSpec,
) -> SimReport {
    let threads = threads.max(1);
    let registry = backend.registry().unwrap_or_else(|| Arc::new(Registry::new()));
    // Thread 0 doubles as the tracker; the rest never run sweeps.
    let untracked = SimConfig { track_every_s: None, ..cfg.clone() };
    let mut partials: Vec<SimReport> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let registry = Arc::clone(&registry);
                let cfg = if t == 0 { cfg } else { &untracked };
                scope.spawn(move || {
                    let slice: Vec<Trip> =
                        trips.iter().skip(t).step_by(threads).copied().collect();
                    let mut worker = WorkerBackend { inner: backend, registry };
                    let mut policy = spec.build(cfg);
                    crate::dispatch::run_dispatch(&mut worker, &slice, cfg, policy.as_mut())
                })
            })
            .collect();
        for h in handles {
            // A worker panic is a test/bench failure; propagate it.
            partials.push(h.join().expect("simulation worker panicked"));
        }
    });
    let mut report = SimReport::default();
    for p in partials {
        report.merge(p);
    }
    report.registry = Some(registry);
    report
}

/// One measured point of the engine scaling curve: a full closed-loop
/// replay at a fixed worker count, with throughput, latency tails and a
/// post-run capacity audit. Produced by [`run_scaling_point`]; consumed
/// by `xar bench` and the `bench_engine` harness
/// (`results/BENCH_engine.json`, schema in EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker threads driving the closed loop.
    pub threads: usize,
    /// Shards in the engine under test.
    pub shards: usize,
    /// Wall-clock seconds for the whole replay.
    pub wall_s: f64,
    /// Requests resolved per wall-clock second.
    pub requests_per_s: f64,
    /// Searches issued per wall-clock second (the paper's dominant
    /// operation under a high look-to-book ratio).
    pub searches_per_s: f64,
    /// Median search latency, nanoseconds.
    pub search_p50_ns: f64,
    /// Tail search latency, nanoseconds.
    pub search_p99_ns: f64,
    /// Requests served by sharing an existing ride.
    pub booked: u64,
    /// Requests that created a new ride.
    pub created: u64,
    /// Requests that could do neither.
    pub unservable: u64,
    /// Rides whose bookings exceed their offered seats — must be 0;
    /// non-zero means the engine lost a seat update under concurrency.
    pub overbooked_rides: u64,
}

impl ScalingPoint {
    /// This point as one JSON object (the element schema of the
    /// `points` array in `results/BENCH_engine.json`, see
    /// EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut w = xar_obs::json::JsonWriter::new();
        w.begin_object();
        w.key("threads");
        w.number_u64(self.threads as u64);
        w.key("shards");
        w.number_u64(self.shards as u64);
        w.key("wall_s");
        w.number_f64(self.wall_s);
        w.key("requests_per_s");
        w.number_f64(self.requests_per_s);
        w.key("searches_per_s");
        w.number_f64(self.searches_per_s);
        w.key("search_p50_ns");
        w.number_f64(self.search_p50_ns);
        w.key("search_p99_ns");
        w.number_f64(self.search_p99_ns);
        w.key("booked");
        w.number_u64(self.booked);
        w.key("created");
        w.number_u64(self.created);
        w.key("unservable");
        w.number_u64(self.unservable);
        w.key("overbooked_rides");
        w.number_u64(self.overbooked_rides);
        w.end_object();
        w.finish()
    }
}

/// Assemble a full engine-scaling curve document (the
/// `results/BENCH_engine.json` schema): run parameters, the measuring
/// host's core count, and one [`ScalingPoint`] object per worker count.
pub fn scaling_curve_json(
    meta: &[(&str, f64)],
    cores: usize,
    points: &[ScalingPoint],
) -> String {
    let mut w = xar_obs::json::JsonWriter::new();
    w.begin_object();
    w.key("bench");
    w.string("engine_scaling");
    for (k, v) in meta {
        w.key(k);
        w.number_f64(*v);
    }
    w.key("cores");
    w.number_u64(cores as u64);
    w.key("points");
    w.begin_array();
    for p in points {
        w.raw(&p.to_json());
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Replay `trips` through a fresh `shards`-shard engine with `threads`
/// closed-loop workers and measure one [`ScalingPoint`]. The engine is
/// built inside so successive points (1/2/4/8 threads) start from
/// identical empty state.
pub fn run_scaling_point(
    region: &Arc<xar_discretize::RegionIndex>,
    engine_cfg: &xar_core::EngineConfig,
    trips: &[Trip],
    cfg: &SimConfig,
    threads: usize,
    shards: usize,
) -> ScalingPoint {
    let backend = ShardedXarBackend::new(ShardedXarEngine::new(
        Arc::clone(region),
        engine_cfg.clone(),
        shards,
    ));
    let t0 = Instant::now();
    let report = run_parallel_simulation(&backend, trips, cfg, threads);
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let mut overbooked = 0u64;
    backend.engine.for_each_ride(|r| {
        if r.bookings.len() > usize::from(cfg.seats) {
            overbooked += 1;
        }
    });
    ScalingPoint {
        threads: threads.max(1),
        shards: backend.engine.shard_count(),
        wall_s,
        requests_per_s: (report.booked + report.created + report.unservable) as f64 / wall_s,
        searches_per_s: report.looks as f64 / wall_s,
        search_p50_ns: crate::report::percentile_ns(&report.search_ns, 50.0),
        search_p99_ns: crate::report::percentile_ns(&report.search_ns, 99.0),
        booked: report.booked,
        created: report.created,
        unservable: report.unservable,
        overbooked_rides: overbooked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trips::{generate_trips, TripGenConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A scripted thread-safe backend to validate driver mechanics
    /// without an engine.
    struct CountingBackend {
        searches: AtomicU64,
        creates: AtomicU64,
        tracks: AtomicU64,
    }

    impl ConcurrentBackend for CountingBackend {
        type Match = ();
        fn search(&self, _: &Trip, _: &SimConfig) -> Vec<()> {
            self.searches.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        }
        fn book(&self, _: &(), _: &SimConfig) -> BookResult {
            BookResult::Failed(Reason::StaleCommit)
        }
        fn create(&self, _: &Trip, _: &SimConfig) -> Result<(), Reason> {
            self.creates.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        fn track(&self, _: f64) {
            self.tracks.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn every_trip_is_replayed_exactly_once() {
        let g = xar_roadnet::CityConfig::test_city(9).generate();
        let trips = generate_trips(&g, &TripGenConfig { count: 101, ..Default::default() });
        let b = CountingBackend {
            searches: AtomicU64::new(0),
            creates: AtomicU64::new(0),
            tracks: AtomicU64::new(0),
        };
        let cfg = SimConfig { track_every_s: Some(600.0), ..Default::default() };
        let r = run_parallel_simulation(&b, &trips, &cfg, 4);
        assert_eq!(b.searches.load(Ordering::Relaxed), 101);
        assert_eq!(b.creates.load(Ordering::Relaxed), 101);
        assert!(b.tracks.load(Ordering::Relaxed) > 0, "thread 0 must run sweeps");
        assert_eq!(r.looks, 101);
        assert_eq!(r.created, 101);
        assert_eq!(r.booked + r.created + r.unservable, 101);
        // Registry counters agree with the merged report.
        let reg = r.registry.as_ref().unwrap();
        assert_eq!(reg.counter("sim.requests_total").get(), 101);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let g = xar_roadnet::CityConfig::test_city(9).generate();
        let trips = generate_trips(&g, &TripGenConfig { count: 10, ..Default::default() });
        let b = CountingBackend {
            searches: AtomicU64::new(0),
            creates: AtomicU64::new(0),
            tracks: AtomicU64::new(0),
        };
        let cfg = SimConfig { track_every_s: None, ..Default::default() };
        let r = run_parallel_simulation(&b, &trips, &cfg, 0);
        assert_eq!(r.looks, 10);
    }

    #[test]
    fn per_thread_slices_stay_time_sorted() {
        let g = xar_roadnet::CityConfig::test_city(11).generate();
        let trips = generate_trips(&g, &TripGenConfig { count: 40, ..Default::default() });
        for t in 0..4 {
            let slice: Vec<&Trip> = trips.iter().skip(t).step_by(4).collect();
            assert!(slice.windows(2).all(|w| w[0].pickup_s <= w[1].pickup_s));
        }
    }
}
