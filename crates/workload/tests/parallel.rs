//! End-to-end parallel-driver tests against the real sharded engine:
//! outcome-counter conservation (no lost updates) and capacity safety
//! (no overbooking) under 8 concurrent closed-loop workers.

use std::sync::Arc;

use xar_core::{EngineConfig, ShardedXarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, PoiConfig};
use xar_workload::{
    generate_trips, run_parallel_simulation, run_simulation, ShardedXarBackend, SimConfig,
    TripGenConfig, XarBackend,
};

fn region() -> Arc<RegionIndex> {
    let graph = Arc::new(CityConfig::manhattan(25, 25, 42).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 700, ..Default::default() });
    Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig {
            landmark_separation_m: 220.0,
            cluster_goal: ClusterGoal::Delta(150.0),
            max_walk_m: 900.0,
            ..Default::default()
        },
    ))
}

#[test]
fn parallel_simulation_conserves_requests_and_never_overbooks() {
    const TRIPS: usize = 400;
    const THREADS: usize = 8;
    let reg = region();
    let graph = Arc::clone(reg.graph());
    let trips = generate_trips(&graph, &TripGenConfig { count: TRIPS, ..Default::default() });
    let cfg = SimConfig::default();
    let backend = ShardedXarBackend::new(ShardedXarEngine::new(reg, EngineConfig::default(), 4));
    let report = run_parallel_simulation(&backend, &trips, &cfg, THREADS);

    // Conservation: every trip resolved to exactly one outcome, in the
    // merged report AND in the shared registry counters (satellite:
    // `sim.requests{outcome}` must sum to requests issued — lost
    // updates would show up as a shortfall here).
    assert_eq!(report.booked + report.created + report.unservable, TRIPS as u64);
    let registry = report.registry.as_ref().expect("backend registry attached");
    let by_outcome: u64 = ["booked", "created", "unservable"]
        .iter()
        .map(|o| registry.counter_with("sim.requests", &[("outcome", o)]).get())
        .sum();
    assert_eq!(by_outcome, TRIPS as u64);
    assert_eq!(registry.counter("sim.requests_total").get(), TRIPS as u64);
    assert_eq!(report.booked, registry.counter_with("sim.requests", &[("outcome", "booked")]).get());
    assert!(report.booked > 0, "hotspot workload must produce shares under contention");

    // Capacity safety: no ride ever exceeded its offered seat count.
    let mut rides = 0usize;
    backend.engine.for_each_ride(|r| {
        rides += 1;
        assert!(
            r.bookings.len() + usize::from(r.seats_available) == usize::from(cfg.seats),
            "ride {:?} seat accounting drifted: {} bookings, {} free, {} offered",
            r.id,
            r.bookings.len(),
            r.seats_available,
            cfg.seats
        );
    });
    assert!(rides > 0, "some rides must still be live at the end of the run");

    // The engine counted every search exactly once (lookups disabled ⇒
    // one search per trip).
    assert_eq!(report.looks, TRIPS as u64);
    assert_eq!(backend.engine.stats().snapshot().searches, TRIPS as u64);
}

#[test]
fn single_threaded_parallel_driver_matches_serial_outcomes() {
    // With one worker the parallel driver replays trips in the same
    // order as the serial driver, so a 1-shard engine must produce the
    // identical outcome counts — the drivers implement the same
    // protocol.
    let reg = region();
    let graph = Arc::clone(reg.graph());
    let trips = generate_trips(&graph, &TripGenConfig { count: 200, ..Default::default() });
    let cfg = SimConfig::default();

    let mut serial =
        XarBackend::new(xar_core::XarEngine::new(Arc::clone(&reg), EngineConfig::default()));
    let rs = run_simulation(&mut serial, &trips, &cfg);

    let backend =
        ShardedXarBackend::new(ShardedXarEngine::new(reg, EngineConfig::default(), 1));
    let rp = run_parallel_simulation(&backend, &trips, &cfg, 1);

    assert_eq!(rs.booked, rp.booked);
    assert_eq!(rs.created, rp.created);
    assert_eq!(rs.unservable, rp.unservable);
    assert_eq!(rs.matches_returned, rp.matches_returned);
}
