//! Equivalence properties of the dispatch pipeline (ISSUE 8):
//!
//! 1. `FirstMatch` under the three-stage pipeline makes the same
//!    decisions as the pre-refactor serial simulator (re-implemented
//!    here, telemetry-free, as the oracle).
//! 2. `BatchWindow` with a zero window degenerates to batches of one
//!    and decides exactly like `FirstMatch`.
//! 3. So does `BatchWindow` with any window but a batch-size cap of 1.
//!
//! Decisions — per trip: booked on which ride / created / unservable —
//! are compared as full vectors, so any divergence in outcome, ride
//! choice, or order fails. Seeded trip streams over one shared region
//! keep the property runs deterministic and affordable.

use std::sync::Arc;

use proptest::prelude::*;
use xar_core::{EngineConfig, XarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, PoiConfig};
use xar_workload::{
    generate_trips, run_simulation, run_simulation_with, BatchWindow, BookResult, Decision,
    DecisionOutcome, RideBackend, SimConfig, Trip, TripGenConfig, XarBackend,
};

/// One shared region per test binary: building it is the expensive
/// part and it is immutable.
fn region() -> &'static Arc<RegionIndex> {
    use std::sync::OnceLock;
    static REGION: OnceLock<Arc<RegionIndex>> = OnceLock::new();
    REGION.get_or_init(|| {
        let graph = Arc::new(CityConfig::manhattan(25, 25, 4321).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
        Arc::new(RegionIndex::build(
            graph,
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ))
    })
}

fn backend() -> XarBackend {
    XarBackend::new(XarEngine::new(Arc::clone(region()), EngineConfig::default()))
}

fn trips(count: usize, seed: u64) -> Vec<Trip> {
    generate_trips(region().graph(), &TripGenConfig { count, seed, ..Default::default() })
}

/// The pre-refactor serial §X.A.2 protocol, decision-relevant parts
/// only: tracking sweeps at `track_every_s`, search, book the matches
/// in order falling through stale entries, else create. This is the
/// oracle the pipeline must reproduce decision-for-decision.
fn reference_decisions<B: RideBackend>(
    backend: &mut B,
    trips: &[Trip],
    cfg: &SimConfig,
) -> Vec<Decision> {
    let mut out = Vec::with_capacity(trips.len());
    let mut next_track = trips.first().map_or(0.0, |t| t.pickup_s);
    for trip in trips {
        if let Some(every) = cfg.track_every_s {
            while trip.pickup_s >= next_track {
                backend.track(next_track);
                next_track += every;
            }
        }
        for _ in 0..cfg.lookups_per_request {
            let _ = backend.search(trip, cfg);
        }
        let matches = backend.search(trip, cfg);
        let mut booked = None;
        for m in &matches {
            if matches!(backend.book(m, cfg), BookResult::Booked { .. }) {
                booked = Some(B::describe(m).ride);
                break;
            }
        }
        let outcome = match booked {
            Some(ride) => DecisionOutcome::Booked { ride },
            None if backend.create(trip, cfg).is_ok() => DecisionOutcome::Created,
            None => DecisionOutcome::Unservable,
        };
        out.push(Decision { trip_id: trip.id, outcome });
    }
    out
}

fn sim_cfg() -> SimConfig {
    SimConfig { track_every_s: Some(600.0), ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Pipeline `FirstMatch` ≡ pre-refactor serial simulator.
    #[test]
    fn first_match_pipeline_equals_legacy_loop(seed in 0u64..10_000, count in 60usize..220) {
        let cfg = sim_cfg();
        let ts = trips(count, seed);
        let oracle = reference_decisions(&mut backend(), &ts, &cfg);
        let first = run_simulation(&mut backend(), &ts, &cfg).decisions;
        prop_assert_eq!(oracle, first);
    }

    /// `batch:0` (every window closes on arrival) ≡ `FirstMatch`.
    #[test]
    fn batch_zero_equals_first_match(seed in 0u64..10_000, count in 60usize..220) {
        let cfg = sim_cfg();
        let ts = trips(count, seed);
        let first = run_simulation(&mut backend(), &ts, &cfg).decisions;
        let mut zero = BatchWindow::new(0.0, u32::from(cfg.seats));
        let batch = run_simulation_with(&mut backend(), &ts, &cfg, &mut zero).decisions;
        prop_assert_eq!(first, batch);
    }

    /// A wide window capped at batch size 1 ≡ `FirstMatch`: joint
    /// assignment over a single request cannot deviate from taking its
    /// best candidate.
    #[test]
    fn batch_size_one_equals_first_match(seed in 0u64..10_000, count in 60usize..220) {
        let cfg = sim_cfg();
        let ts = trips(count, seed);
        let first = run_simulation(&mut backend(), &ts, &cfg).decisions;
        let mut one =
            BatchWindow::new(3_600.0, u32::from(cfg.seats)).with_max_batch(1);
        let batch = run_simulation_with(&mut backend(), &ts, &cfg, &mut one).decisions;
        prop_assert_eq!(first, batch);
    }
}

/// The batched path's commit re-validation must never *lose* service:
/// one deterministic mid-size workload where batch:20ms (compressed
/// day) serves at least as many requests as first-match — the Fig. 7
/// claim in miniature.
#[test]
fn batched_dispatch_does_not_lose_service() {
    let cfg = sim_cfg();
    let mut ts = trips(1_500, 77);
    // Compress the day to ~150 req/s so 20 ms windows hold > 1 request.
    let first_s = ts.first().unwrap().pickup_s;
    let span = (ts.last().unwrap().pickup_s - first_s).max(f64::MIN_POSITIVE);
    for t in ts.iter_mut() {
        t.pickup_s = (t.pickup_s - first_s) / span * 10.0;
    }
    let first = run_simulation(&mut backend(), &ts, &cfg);
    let mut policy = BatchWindow::new(0.020, u32::from(cfg.seats));
    let batch = run_simulation_with(&mut backend(), &ts, &cfg, &mut policy);
    assert!(batch.window_sizes.iter().any(|&s| s > 1), "windows never batched");
    assert!(
        batch.service_rate() >= first.service_rate(),
        "batch served {:.4} < first-match {:.4}",
        batch.service_rate(),
        first.service_rate(),
    );
}
