//! Determinism and protocol-conservation tests of the simulation
//! framework: identical seeds must give bit-identical outcomes, since
//! every component (city, POIs, clustering, trips, engines) is seeded.

use std::sync::Arc;

use xar_core::{EngineConfig, XarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_roadnet::{sample_pois, CityConfig, PoiConfig, RoadGraph};
use xar_workload::{generate_trips, run_simulation, SimConfig, TripGenConfig, XarBackend};

fn fixture() -> (Arc<RoadGraph>, Arc<RegionIndex>) {
    let graph = Arc::new(CityConfig::manhattan(25, 25, 99).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
    ));
    (graph, region)
}

#[test]
fn identical_seeds_identical_outcomes() {
    let (graph, region) = fixture();
    let run = |g: &Arc<RoadGraph>, r: &Arc<RegionIndex>| {
        let trips = generate_trips(g, &TripGenConfig { count: 500, ..Default::default() });
        let mut backend = XarBackend::new(XarEngine::new(Arc::clone(r), EngineConfig::default()));
        let rep = run_simulation(&mut backend, &trips, &SimConfig::default());
        (rep.booked, rep.created, rep.matches_returned, rep.detour_actual_m, rep.walk_m)
    };
    let a = run(&graph, &region);
    let b = run(&graph, &region);
    assert_eq!(a.0, b.0, "booked counts diverge");
    assert_eq!(a.1, b.1, "created counts diverge");
    assert_eq!(a.2, b.2, "match counts diverge");
    assert_eq!(a.3, b.3, "detours diverge (non-deterministic engine state)");
    assert_eq!(a.4, b.4, "walk distances diverge");
}

#[test]
fn whole_pipeline_is_seed_reproducible() {
    // Rebuild EVERYTHING from seeds — city, POIs, region, trips — and
    // compare against the fixture run.
    let run_all = || {
        let graph = Arc::new(CityConfig::manhattan(25, 25, 99).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: 600, ..Default::default() });
        let region = Arc::new(RegionIndex::build(
            Arc::clone(&graph),
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ));
        let trips = generate_trips(&graph, &TripGenConfig { count: 400, ..Default::default() });
        let mut backend =
            XarBackend::new(XarEngine::new(Arc::clone(&region), EngineConfig::default()));
        let rep = run_simulation(&mut backend, &trips, &SimConfig::default());
        (region.cluster_count(), region.epsilon_m(), rep.booked, rep.created)
    };
    assert_eq!(run_all(), run_all(), "pipeline is not seed-deterministic");
}

#[test]
fn larger_walking_limits_never_reduce_shares() {
    // Monotonicity: a more permissive walking limit can only help.
    let (graph, region) = fixture();
    let trips = generate_trips(&graph, &TripGenConfig { count: 500, seed: 3, ..Default::default() });
    let share_at = |walk: f64| {
        let mut backend =
            XarBackend::new(XarEngine::new(Arc::clone(&region), EngineConfig::default()));
        let rep = run_simulation(
            &mut backend,
            &trips,
            &SimConfig { walk_limit_m: walk, ..Default::default() },
        );
        rep.booked
    };
    let tight = share_at(200.0);
    let loose = share_at(800.0);
    // Not strictly monotone per-trip (supply dynamics shift), but a 4x
    // walking budget must not lose a large fraction of shares.
    assert!(
        loose as f64 >= tight as f64 * 0.9,
        "walk 800 m booked {loose} < walk 200 m booked {tight}"
    );
}

#[test]
fn wider_windows_never_reduce_shares_substantially() {
    let (graph, region) = fixture();
    let trips = generate_trips(&graph, &TripGenConfig { count: 500, seed: 4, ..Default::default() });
    let share_at = |window: f64| {
        let mut backend =
            XarBackend::new(XarEngine::new(Arc::clone(&region), EngineConfig::default()));
        let rep = run_simulation(
            &mut backend,
            &trips,
            &SimConfig { window_s: window, ..Default::default() },
        );
        rep.booked
    };
    let tight = share_at(300.0);
    let loose = share_at(2_400.0);
    assert!(
        loose as f64 >= tight as f64 * 0.9,
        "wider window lost shares: {loose} vs {tight}"
    );
}
