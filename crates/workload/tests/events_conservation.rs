//! End-to-end conservation of the wide-event plane (ISSUE 9,
//! satellite 3): every request of a dispatch run emits exactly one
//! event, the events reconcile with the run's `sim.requests{outcome}`
//! / `sim.reject_reason{reason=...}` counters, and **no** rejection
//! decodes to `Reason::Unknown` — the taxonomy is closed over every
//! real rejection path (satellite 2's runtime half).
//!
//! All tests share the process-global event sink, so they serialize on
//! one mutex and live in one integration binary.

use std::sync::{Arc, Mutex};

use xar_core::{EngineConfig, Reason, XarEngine};
use xar_discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xar_obs::events;
use xar_roadnet::{sample_pois, CityConfig, PoiConfig};
use xar_workload::backend::{TShareBackend, XarBackend};
use xar_workload::dispatch::DispatchSpec;
use xar_workload::report::SimReport;
use xar_workload::sim::{run_simulation_with, SimConfig};
use xar_workload::trips::{generate_trips, TripGenConfig};
use xar_tshare::{TShareConfig, TShareEngine};

/// The process-global sink serializes the tests.
static GATE: Mutex<()> = Mutex::new(());

fn city(seed: u64) -> Arc<xar_roadnet::RoadGraph> {
    Arc::new(CityConfig::manhattan(22, 22, seed).generate())
}

fn region(graph: &Arc<xar_roadnet::RoadGraph>) -> Arc<RegionIndex> {
    let pois = sample_pois(graph, &PoiConfig { count: 600, ..Default::default() });
    Arc::new(RegionIndex::build(
        Arc::clone(graph),
        &pois,
        RegionConfig {
            landmark_separation_m: 220.0,
            cluster_goal: ClusterGoal::Delta(150.0),
            max_walk_m: 900.0,
            ..Default::default()
        },
    ))
}

/// Run `trips` through a fresh XAR backend under `spec` with the event
/// sink capturing everything, and return (report, events snapshot).
fn run_with_events(
    seed: u64,
    trips: usize,
    cfg: &SimConfig,
    spec: DispatchSpec,
) -> (SimReport, events::EventsSnapshot) {
    let graph = city(seed);
    let reg = region(&graph);
    let ts = generate_trips(&graph, &TripGenConfig { count: trips, ..Default::default() });
    let mut backend = XarBackend::new(XarEngine::new(reg, EngineConfig::default()));
    events::configure(events::DEFAULT_CAPACITY);
    events::set_enabled(true);
    let mut policy = spec.build(cfg);
    let report = run_simulation_with(&mut backend, &ts, cfg, policy.as_mut());
    events::set_enabled(false);
    let snap = events::snapshot();
    (report, snap)
}

/// Events must reconcile *exactly* with the run's outcome counters:
/// one event per request, outcome histogram equal to the
/// `sim.requests{outcome}` counters, and
/// `booked + Σ reject_reason = total`.
fn assert_conserved(report: &SimReport, snap: &events::EventsSnapshot) {
    let total = report.booked + report.created + report.unservable;
    assert_eq!(snap.emitted, total, "one event per request");
    assert_eq!(snap.kept() + snap.dropped, snap.emitted, "drop accounting conserves");
    assert_eq!(snap.dropped, 0, "default capacity must hold the whole run");

    let count = |outcome: &str| {
        snap.events.iter().filter(|e| e.outcome == outcome).count() as u64
    };
    assert_eq!(count("booked"), report.booked);
    assert_eq!(count("created"), report.created);
    assert_eq!(count("unservable"), report.unservable);

    // Registry reconciliation: served + each rejection reason = total.
    let reg = report.registry.as_ref().expect("registry attached");
    assert_eq!(reg.counter("sim.requests_total").get(), total);
    let booked = reg.counter_with("sim.requests", &[("outcome", "booked")]).get();
    let rejected: u64 = Reason::ALL
        .iter()
        .map(|r| reg.counter_with("sim.reject_reason", &[("reason", r.code())]).get())
        .sum();
    assert_eq!(booked + rejected, total, "booked + Σ reject_reason must equal total");

    // Event-level reasons agree with the counters, reason by reason.
    for r in Reason::ALL {
        let ctr = reg.counter_with("sim.reject_reason", &[("reason", r.code())]).get();
        let evs = snap
            .events
            .iter()
            .filter(|e| e.outcome != "booked" && e.reason == r.code())
            .count() as u64;
        assert_eq!(evs, ctr, "reason {} disagrees between events and counters", r.code());
    }

    // The taxonomy is closed: no real rejection decodes to Unknown,
    // every event carries a reason, booked events say "served".
    for e in &snap.events {
        assert_ne!(e.reason, Reason::Unknown.code(), "request {} hit Unknown", e.request_id);
        assert!(!e.reason.is_empty(), "request {} has no reason", e.request_id);
        if e.outcome == "booked" {
            assert_eq!(e.reason, Reason::Served.code());
        }
    }
}

#[test]
fn first_match_run_conserves_and_never_says_unknown() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SimConfig { track_every_s: None, ..Default::default() };
    let (report, snap) = run_with_events(42, 500, &cfg, DispatchSpec::First);
    assert!(report.booked > 0, "workload must produce shares");
    assert_conserved(&report, &snap);
}

#[test]
fn batch_window_run_conserves_and_never_says_unknown() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SimConfig { track_every_s: None, ..Default::default() };
    let (report, snap) =
        run_with_events(43, 500, &cfg, DispatchSpec::Batch { window_ms: 50 });
    assert!(report.booked > 0, "workload must produce shares");
    assert_conserved(&report, &snap);
    // Batched runs stamp a shared window id: booked-with-siblings
    // requests must not all sit in distinct windows.
    let windows: std::collections::HashSet<u64> =
        snap.events.iter().map(|e| e.window).collect();
    assert!(windows.len() < snap.events.len(), "batching must group requests into windows");
}

/// Property-style sweep (no external proptest dependency): randomized
/// hostile configurations — starved seats, tiny detour budgets, tight
/// walking limits, narrow windows, batch and first-match dispatch —
/// must keep the taxonomy closed and the accounting conserved on every
/// run. These configs are chosen to excite *every* rejection family:
/// CapacityFull, DetourBudgetExceeded, WalkLimitExceeded,
/// NoClusterCandidates, stale paths.
#[test]
fn hostile_config_sweep_emits_zero_unknown() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    // xorshift64* so the sweep is deterministic yet covers varied space.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };
    for round in 0..6u64 {
        let cfg = SimConfig {
            track_every_s: None,
            walk_limit_m: [60.0, 250.0, 800.0][(next() % 3) as usize],
            window_s: [90.0, 600.0, 1_200.0][(next() % 3) as usize],
            detour_limit_m: [150.0, 900.0, 4_000.0][(next() % 3) as usize],
            seats: [1, 2, 3][(next() % 3) as usize],
            ..Default::default()
        };
        let spec = if next() % 2 == 0 {
            DispatchSpec::First
        } else {
            DispatchSpec::Batch { window_ms: 20 + next() % 200 }
        };
        let (report, snap) = run_with_events(100 + round, 250, &cfg, spec);
        assert_conserved(&report, &snap);
    }
}

/// The T-Share baseline rides the *default* `search_explained`, whose
/// synthetic explain must still close the taxonomy (a matchless search
/// decodes to `no_cluster_candidates`, a stale booking to its typed
/// reason).
#[test]
fn tshare_default_explain_stays_closed() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let graph = city(7);
    let ts = generate_trips(&graph, &TripGenConfig { count: 300, ..Default::default() });
    let mut backend = TShareBackend::new(TShareEngine::new(
        Arc::clone(&graph),
        TShareConfig { grid_cell_m: 400.0, ..Default::default() },
    ));
    let cfg = SimConfig { track_every_s: None, ..Default::default() };
    events::configure(events::DEFAULT_CAPACITY);
    events::set_enabled(true);
    let mut policy = DispatchSpec::First.build(&cfg);
    let report = run_simulation_with(&mut backend, &ts, &cfg, policy.as_mut());
    events::set_enabled(false);
    let snap = events::snapshot();
    assert_conserved(&report, &snap);
}

/// The JSONL round trip survives a real run: serialize the snapshot,
/// parse it back, and the histograms reconcile with the outcome
/// counts (the `xar logs` contract, exercised library-side).
#[test]
fn jsonl_round_trip_reconciles_with_run() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SimConfig { track_every_s: None, ..Default::default() };
    let (report, snap) =
        run_with_events(55, 300, &cfg, DispatchSpec::Batch { window_ms: 50 });
    let text = events::to_jsonl(&snap);
    let log = events::parse_jsonl(&text).expect("run output must parse");
    assert_eq!(log.events.len() as u64, snap.kept());
    assert_eq!(log.emitted, snap.emitted);
    let outcomes = log.outcome_histogram();
    let get = |k: &str| outcomes.iter().find(|(o, _)| o == k).map_or(0, |(_, n)| *n);
    assert_eq!(get("booked"), report.booked);
    assert_eq!(get("created"), report.created);
    assert_eq!(get("unservable"), report.unservable);
    let reasons = log.reason_histogram();
    assert!(reasons.iter().all(|(r, _)| r != "unknown"));
    let rejected: u64 =
        reasons.iter().filter(|(r, _)| r != "served").map(|(_, n)| *n).sum();
    assert_eq!(rejected, report.created + report.unservable);
}
