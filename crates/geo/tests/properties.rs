//! Property-based tests for the geographic primitives.

use proptest::prelude::*;
use xar_geo::{BoundingBox, GeoPoint, GridSpec, LocalProjection};

/// Strategy: points within a Manhattan-sized region.
fn city_point() -> impl Strategy<Value = GeoPoint> {
    (40.70f64..40.80, -74.02f64..-73.93).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

fn city_bbox() -> BoundingBox {
    BoundingBox::new(GeoPoint::new(40.70, -74.02), GeoPoint::new(40.80, -73.93))
}

proptest! {
    /// Haversine is a metric: non-negative, symmetric, and satisfies the
    /// triangle inequality.
    #[test]
    fn haversine_is_a_metric(a in city_point(), b in city_point(), c in city_point()) {
        let ab = a.haversine_m(&b);
        let ba = b.haversine_m(&a);
        let ac = a.haversine_m(&c);
        let cb = c.haversine_m(&b);
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!(ab <= ac + cb + 1e-6);
    }

    /// Projection round-trips points within a millimetre.
    #[test]
    fn projection_round_trip(p in city_point()) {
        let proj = LocalProjection::new(GeoPoint::new(40.75, -73.975));
        let (x, y) = proj.to_xy(&p);
        let q = proj.from_xy(x, y);
        prop_assert!(p.haversine_m(&q) < 1e-3);
    }

    /// Every in-region point maps to a valid cell whose centroid is within
    /// half a cell diagonal — Definition 1's unique total mapping.
    #[test]
    fn grid_mapping_is_total_and_tight(p in city_point(), cell in 50.0f64..500.0) {
        let grid = GridSpec::new(city_bbox(), cell);
        let id = grid.grid_of(&p);
        prop_assert!(grid.is_valid(id));
        let c = grid.centroid(id);
        let half_diag = cell * std::f64::consts::SQRT_2 / 2.0;
        prop_assert!(p.haversine_m(&c) <= half_diag + 1.0);
    }

    /// Two points in the same cell are within one cell diagonal of each
    /// other; grid_of is deterministic.
    #[test]
    fn same_cell_points_are_close(p in city_point(), q in city_point()) {
        let grid = GridSpec::new(city_bbox(), 100.0);
        prop_assert_eq!(grid.grid_of(&p), grid.grid_of(&p));
        if grid.grid_of(&p) == grid.grid_of(&q) {
            prop_assert!(p.haversine_m(&q) <= 100.0 * std::f64::consts::SQRT_2 + 1.0);
        }
    }

    /// destination() moves the requested distance (within 0.1%).
    #[test]
    fn destination_distance(p in city_point(), brg in 0.0f64..360.0, d in 1.0f64..20_000.0) {
        let q = p.destination(brg, d);
        let got = p.haversine_m(&q);
        prop_assert!((got - d).abs() <= d * 1e-3 + 0.01, "asked {d}, got {got}");
    }
}
