//! WGS-84 point locations and great-circle distances.

use crate::EARTH_RADIUS_M;

/// A point location given by a latitude and a longitude, in degrees.
///
/// This is the paper's atomic unit of location: "any point location,
/// given by a latitude and a longitude can be uniquely mapped to a grid,
/// then a landmark and finally a cluster" (§IV).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north. Valid range `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east. Valid range `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Create a point from latitude and longitude in degrees.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the coordinates are outside the valid
    /// WGS-84 range or not finite.
    #[inline]
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!(lat.is_finite() && (-90.0..=90.0).contains(&lat), "invalid latitude {lat}");
        debug_assert!(
            lon.is_finite() && (-180.0..=180.0).contains(&lon),
            "invalid longitude {lon}"
        );
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in metres, by the haversine
    /// formula on a spherical Earth of radius [`EARTH_RADIUS_M`].
    ///
    /// Used as the "crow-flies" distance wherever the paper's T-Share
    /// comparison replaces shortest paths with the "haversine formula,
    /// which takes negligible constant time" (§X.B.2).
    ///
    /// ```
    /// use xar_geo::GeoPoint;
    /// let jfk = GeoPoint::new(40.6413, -73.7781);
    /// let lga = GeoPoint::new(40.7769, -73.8740);
    /// let d = jfk.haversine_m(&lga);
    /// assert!((16_000.0..18_500.0).contains(&d));
    /// ```
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Initial bearing from `self` towards `other`, in degrees clockwise
    /// from north, in `[0, 360)`.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// The destination point reached by travelling `distance_m` metres
    /// along the great circle with initial `bearing_deg` (degrees
    /// clockwise from north).
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> GeoPoint {
        let ang = distance_m / EARTH_RADIUS_M;
        let brg = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * ang.cos() + lat1.cos() * ang.sin() * brg.cos()).asin();
        let lon2 = lon1
            + (brg.sin() * ang.sin() * lat1.cos()).atan2(ang.cos() - lat1.sin() * lat2.sin());
        let lon2 = (lon2.to_degrees() + 540.0) % 360.0 - 180.0;
        GeoPoint::new(lat2.to_degrees(), lon2)
    }

    /// Linear interpolation between two points in lat/lon space.
    ///
    /// Adequate for the sub-kilometre segments this system works with;
    /// `t` is clamped to `[0, 1]`.
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        GeoPoint::new(
            self.lat + (other.lat - self.lat) * t,
            self.lon + (other.lon - self.lon) * t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lower Manhattan-ish reference point used across the test suite.
    fn nyc() -> GeoPoint {
        GeoPoint::new(40.7128, -74.0060)
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let p = nyc();
        assert_eq!(p.haversine_m(&p), 0.0);
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = nyc();
        let b = GeoPoint::new(40.7614, -73.9776); // midtown
        assert!((a.haversine_m(&b) - b.haversine_m(&a)).abs() < 1e-9);
    }

    #[test]
    fn haversine_known_distance() {
        // JFK airport to LaGuardia airport: roughly 17.0 km great-circle.
        let jfk = GeoPoint::new(40.6413, -73.7781);
        let lga = GeoPoint::new(40.7769, -73.8740);
        let d = jfk.haversine_m(&lga);
        assert!((16_000.0..18_500.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_one_degree_latitude() {
        // One degree of latitude is ~111.2 km everywhere.
        let a = GeoPoint::new(40.0, -74.0);
        let b = GeoPoint::new(41.0, -74.0);
        let d = a.haversine_m(&b);
        assert!((110_000.0..112_500.0).contains(&d), "got {d}");
    }

    #[test]
    fn destination_round_trip() {
        let p = nyc();
        for brg in [0.0, 45.0, 90.0, 180.0, 270.0, 359.0] {
            let q = p.destination(brg, 5_000.0);
            let d = p.haversine_m(&q);
            assert!((d - 5_000.0).abs() < 1.0, "bearing {brg}: got {d}");
        }
    }

    #[test]
    fn bearing_cardinal_directions() {
        let p = nyc();
        let north = p.destination(0.0, 1000.0);
        let east = p.destination(90.0, 1000.0);
        assert!((p.bearing_deg(&north) - 0.0).abs() < 0.5 || (p.bearing_deg(&north) - 360.0).abs() < 0.5);
        assert!((p.bearing_deg(&east) - 90.0).abs() < 0.5);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = GeoPoint::new(40.0, -74.0);
        let b = GeoPoint::new(41.0, -73.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat - 40.5).abs() < 1e-12);
        assert!((mid.lon + 73.5).abs() < 1e-12);
    }

    #[test]
    fn lerp_clamps_t() {
        let a = GeoPoint::new(40.0, -74.0);
        let b = GeoPoint::new(41.0, -73.0);
        assert_eq!(a.lerp(&b, -3.0), a);
        assert_eq!(a.lerp(&b, 7.0), b);
    }
}
