//! The implicit square grid of Definition 1.
//!
//! > *"A grid is defined as a bounded square geographical region. All
//! > point locations whose latitude and longitude map to the region
//! > bounded by the square defining a grid, are associated or mapped to
//! > the specific grid."* (§IV, Definition 1)
//!
//! The grid is *implicit*: no storage is allocated per cell. A
//! [`GridSpec`] holds only the region bounding box and the cell side
//! length; [`GridSpec::grid_of`] maps any point to its [`GridId`]
//! numerically, and [`GridSpec::centroid`] recovers the cell centroid
//! that stands in for the cell in all distance computations ("we
//! identify a grid by its centroid", §IV).

use crate::{BoundingBox, GeoPoint, LocalProjection};

/// Identifier of one cell of the implicit grid: `(column, row)` counted
/// from the south-west corner of the region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridId {
    /// Column index (west → east).
    pub col: u32,
    /// Row index (south → north).
    pub row: u32,
}

impl GridId {
    /// Pack into a single `u64` (row-major), useful as a compact map key.
    #[inline]
    pub fn packed(self) -> u64 {
        (u64::from(self.row) << 32) | u64::from(self.col)
    }

    /// Inverse of [`GridId::packed`].
    #[inline]
    pub fn from_packed(v: u64) -> Self {
        Self { col: (v & 0xFFFF_FFFF) as u32, row: (v >> 32) as u32 }
    }
}

/// The implicit grid over a region: a bounding box partitioned into
/// square cells of a fixed side length (100 m in the paper: "we consider
/// very small grids of size 100 m²", §IV).
///
/// ```
/// use xar_geo::{BoundingBox, GeoPoint, GridSpec};
/// let bbox = BoundingBox::new(GeoPoint::new(40.70, -74.02), GeoPoint::new(40.80, -73.93));
/// let grid = GridSpec::new(bbox, 100.0);
/// let p = GeoPoint::new(40.7512, -73.9876);
/// let cell = grid.grid_of(&p);                     // unique total mapping
/// assert_eq!(grid.grid_of(&grid.centroid(cell)), cell); // centroid stays inside
/// ```
#[derive(Debug, Clone)]
pub struct GridSpec {
    bbox: BoundingBox,
    proj: LocalProjection,
    cell_m: f64,
    cols: u32,
    rows: u32,
    /// Projected coordinates of the bbox south-west corner.
    sw_xy: (f64, f64),
}

impl GridSpec {
    /// Create a grid over `bbox` with cells of side `cell_m` metres.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not strictly positive and finite.
    pub fn new(bbox: BoundingBox, cell_m: f64) -> Self {
        assert!(cell_m.is_finite() && cell_m > 0.0, "cell size must be positive, got {cell_m}");
        let proj = LocalProjection::new(bbox.center());
        let (sw_x, sw_y) = proj.to_xy(&bbox.min);
        let (ne_x, ne_y) = proj.to_xy(&bbox.max);
        let cols = (((ne_x - sw_x) / cell_m).ceil() as u32).max(1);
        let rows = (((ne_y - sw_y) / cell_m).ceil() as u32).max(1);
        Self { bbox, proj, cell_m, cols, rows, sw_xy: (sw_x, sw_y) }
    }

    /// The region covered by the grid.
    #[inline]
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Cell side length in metres.
    #[inline]
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of cells in the grid.
    #[inline]
    pub fn cell_count(&self) -> u64 {
        u64::from(self.cols) * u64::from(self.rows)
    }

    /// Map a point to its grid cell.
    ///
    /// Points outside the region are clamped to the nearest boundary
    /// cell, so the mapping is total — every point location maps to a
    /// unique grid, as Definition 1 requires.
    pub fn grid_of(&self, p: &GeoPoint) -> GridId {
        let (x, y) = self.proj.to_xy(p);
        let col = ((x - self.sw_xy.0) / self.cell_m).floor();
        let row = ((y - self.sw_xy.1) / self.cell_m).floor();
        GridId {
            col: (col.max(0.0) as u32).min(self.cols - 1),
            row: (row.max(0.0) as u32).min(self.rows - 1),
        }
    }

    /// The centroid of a grid cell — the point that represents the cell
    /// in every distance computation.
    pub fn centroid(&self, id: GridId) -> GeoPoint {
        let x = self.sw_xy.0 + (f64::from(id.col) + 0.5) * self.cell_m;
        let y = self.sw_xy.1 + (f64::from(id.row) + 0.5) * self.cell_m;
        self.proj.from_xy(x, y)
    }

    /// Whether `id` addresses a cell inside this grid.
    #[inline]
    pub fn is_valid(&self, id: GridId) -> bool {
        id.col < self.cols && id.row < self.rows
    }

    /// The up-to-8 neighbouring cells of `id` (fewer on the boundary).
    pub fn neighbors(&self, id: GridId) -> Vec<GridId> {
        let mut out = Vec::with_capacity(8);
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let r = i64::from(id.row) + dr;
                let c = i64::from(id.col) + dc;
                if r >= 0 && c >= 0 && (r as u32) < self.rows && (c as u32) < self.cols {
                    out.push(GridId { col: c as u32, row: r as u32 });
                }
            }
        }
        out
    }

    /// Cells in the square "ring" at Chebyshev distance `radius` around
    /// `center` (radius 0 is the centre cell itself). This is the
    /// expansion order used by grid-based searches such as T-Share's.
    pub fn ring(&self, center: GridId, radius: u32) -> Vec<GridId> {
        let mut out = Vec::with_capacity((8 * radius.max(1)) as usize);
        self.for_ring(center, radius, |id| out.push(id));
        out
    }

    /// Visit the cells of [`GridSpec::ring`] without allocating — hot
    /// paths (the spatial locator's nearest-node search runs on every
    /// engine search) use this to stay allocation-free.
    pub fn for_ring(&self, center: GridId, radius: u32, mut visit: impl FnMut(GridId)) {
        if radius == 0 {
            if self.is_valid(center) {
                visit(center);
            }
            return;
        }
        let r = i64::from(radius);
        let (cc, cr) = (i64::from(center.col), i64::from(center.row));
        let mut push = |c: i64, row: i64| {
            if c >= 0 && row >= 0 && (c as u32) < self.cols && (row as u32) < self.rows {
                visit(GridId { col: c as u32, row: row as u32 });
            }
        };
        for dc in -r..=r {
            push(cc + dc, cr - r);
            push(cc + dc, cr + r);
        }
        for dr in (-r + 1)..r {
            push(cc - r, cr + dr);
            push(cc + r, cr + dr);
        }
    }

    /// Iterate over every cell of the grid, row-major from the
    /// south-west corner.
    pub fn iter_cells(&self) -> impl Iterator<Item = GridId> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |row| (0..cols).map(move |col| GridId { col, row }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GridSpec {
        let bbox = BoundingBox::new(GeoPoint::new(40.70, -74.02), GeoPoint::new(40.80, -73.93));
        GridSpec::new(bbox, 100.0)
    }

    #[test]
    fn dimensions_match_extent() {
        let g = spec();
        // ~7.6 km wide, ~11.1 km tall at 100 m cells.
        assert!((70..=80).contains(&g.cols()), "cols {}", g.cols());
        assert!((105..=115).contains(&g.rows()), "rows {}", g.rows());
        assert_eq!(g.cell_count(), u64::from(g.cols()) * u64::from(g.rows()));
    }

    #[test]
    fn every_point_maps_to_unique_cell_containing_it() {
        let g = spec();
        let p = GeoPoint::new(40.7512, -73.9876);
        let id = g.grid_of(&p);
        let c = g.centroid(id);
        // Point must be within half a cell diagonal of its centroid.
        let d = p.haversine_m(&c);
        assert!(d <= 100.0 * std::f64::consts::SQRT_2 / 2.0 + 1.0, "distance {d}");
    }

    #[test]
    fn centroid_round_trips_to_same_cell() {
        let g = spec();
        for id in [GridId { col: 0, row: 0 }, GridId { col: 10, row: 42 }, GridId { col: g.cols() - 1, row: g.rows() - 1 }] {
            assert_eq!(g.grid_of(&g.centroid(id)), id);
        }
    }

    #[test]
    fn out_of_region_points_clamp_to_boundary() {
        let g = spec();
        let far_sw = GeoPoint::new(40.0, -75.0);
        let id = g.grid_of(&far_sw);
        assert_eq!(id, GridId { col: 0, row: 0 });
        let far_ne = GeoPoint::new(41.0, -73.0);
        let id = g.grid_of(&far_ne);
        assert_eq!(id, GridId { col: g.cols() - 1, row: g.rows() - 1 });
    }

    #[test]
    fn neighbors_interior_has_eight() {
        let g = spec();
        assert_eq!(g.neighbors(GridId { col: 5, row: 5 }).len(), 8);
    }

    #[test]
    fn neighbors_corner_has_three() {
        let g = spec();
        assert_eq!(g.neighbors(GridId { col: 0, row: 0 }).len(), 3);
    }

    #[test]
    fn ring_counts() {
        let g = spec();
        let c = GridId { col: 20, row: 20 };
        assert_eq!(g.ring(c, 0), vec![c]);
        assert_eq!(g.ring(c, 1).len(), 8);
        assert_eq!(g.ring(c, 2).len(), 16);
        // Rings partition the neighbourhood: no duplicates.
        let mut all: Vec<_> = (0..=3).flat_map(|r| g.ring(c, r)).collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn ring_clips_at_boundary() {
        let g = spec();
        let c = GridId { col: 0, row: 0 };
        assert_eq!(g.ring(c, 1).len(), 3);
    }

    #[test]
    fn packed_round_trip() {
        let id = GridId { col: 123, row: 4567 };
        assert_eq!(GridId::from_packed(id.packed()), id);
    }

    #[test]
    fn iter_cells_covers_all_once() {
        let bbox = BoundingBox::new(GeoPoint::new(40.70, -74.02), GeoPoint::new(40.705, -74.015));
        let g = GridSpec::new(bbox, 100.0);
        let cells: Vec<_> = g.iter_cells().collect();
        assert_eq!(cells.len() as u64, g.cell_count());
        let mut dedup = cells.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), cells.len());
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_panics() {
        let bbox = BoundingBox::new(GeoPoint::new(40.70, -74.02), GeoPoint::new(40.80, -73.93));
        let _ = GridSpec::new(bbox, 0.0);
    }
}
