//! Axis-aligned latitude/longitude bounding boxes.

use crate::GeoPoint;

/// An axis-aligned bounding box in latitude/longitude space.
///
/// Used to delimit the geographical region the system is deployed for
/// ("if the region is a city, the entire city needs to be discretized",
/// §III) and as the domain of the implicit grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// South-west corner.
    pub min: GeoPoint,
    /// North-east corner.
    pub max: GeoPoint,
}

impl BoundingBox {
    /// Create a bounding box from its south-west and north-east corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not south-west of `max`.
    pub fn new(min: GeoPoint, max: GeoPoint) -> Self {
        assert!(
            min.lat <= max.lat && min.lon <= max.lon,
            "bounding box corners out of order: {min:?} vs {max:?}"
        );
        Self { min, max }
    }

    /// The smallest box containing all `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = GeoPoint>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let (mut min_lat, mut max_lat) = (first.lat, first.lat);
        let (mut min_lon, mut max_lon) = (first.lon, first.lon);
        for p in it {
            min_lat = min_lat.min(p.lat);
            max_lat = max_lat.max(p.lat);
            min_lon = min_lon.min(p.lon);
            max_lon = max_lon.max(p.lon);
        }
        Some(Self {
            min: GeoPoint::new(min_lat, min_lon),
            max: GeoPoint::new(max_lat, max_lon),
        })
    }

    /// Whether the box contains `p` (inclusive on all edges).
    #[inline]
    pub fn contains(&self, p: &GeoPoint) -> bool {
        (self.min.lat..=self.max.lat).contains(&p.lat)
            && (self.min.lon..=self.max.lon).contains(&p.lon)
    }

    /// The centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min.lat + self.max.lat) / 2.0,
            (self.min.lon + self.max.lon) / 2.0,
        )
    }

    /// Grow the box by `margin_deg` degrees on every side (clamped to
    /// the valid WGS-84 range).
    pub fn expanded(&self, margin_deg: f64) -> Self {
        Self {
            min: GeoPoint::new(
                (self.min.lat - margin_deg).max(-90.0),
                (self.min.lon - margin_deg).max(-180.0),
            ),
            max: GeoPoint::new(
                (self.max.lat + margin_deg).min(90.0),
                (self.max.lon + margin_deg).min(180.0),
            ),
        }
    }

    /// Approximate width (east-west extent at the centre latitude) in
    /// metres.
    pub fn width_m(&self) -> f64 {
        let c = self.center();
        GeoPoint::new(c.lat, self.min.lon).haversine_m(&GeoPoint::new(c.lat, self.max.lon))
    }

    /// Approximate height (north-south extent) in metres.
    pub fn height_m(&self) -> f64 {
        GeoPoint::new(self.min.lat, self.min.lon)
            .haversine_m(&GeoPoint::new(self.max.lat, self.min.lon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BoundingBox {
        BoundingBox::new(GeoPoint::new(40.70, -74.02), GeoPoint::new(40.80, -73.93))
    }

    #[test]
    fn contains_interior_and_edges() {
        let b = sample();
        assert!(b.contains(&GeoPoint::new(40.75, -73.98)));
        assert!(b.contains(&b.min));
        assert!(b.contains(&b.max));
        assert!(!b.contains(&GeoPoint::new(40.69, -73.98)));
        assert!(!b.contains(&GeoPoint::new(40.75, -73.92)));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = vec![
            GeoPoint::new(40.71, -74.00),
            GeoPoint::new(40.79, -73.95),
            GeoPoint::new(40.74, -74.01),
        ];
        let b = BoundingBox::from_points(pts.clone()).unwrap();
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min.lat, 40.71);
        assert_eq!(b.max.lon, -73.95);
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn center_is_midpoint() {
        let b = sample();
        let c = b.center();
        assert!((c.lat - 40.75).abs() < 1e-12);
        assert!((c.lon + 73.975).abs() < 1e-12);
    }

    #[test]
    fn expanded_grows_box() {
        let b = sample().expanded(0.01);
        assert!(b.contains(&GeoPoint::new(40.695, -74.025)));
    }

    #[test]
    fn extent_in_metres_is_plausible() {
        let b = sample();
        // 0.1 deg lat ~ 11.1 km; 0.09 deg lon at 40.75N ~ 7.6 km.
        assert!((b.height_m() - 11_120.0).abs() < 200.0, "{}", b.height_m());
        assert!((b.width_m() - 7_580.0).abs() < 200.0, "{}", b.width_m());
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_corners_panic() {
        let _ = BoundingBox::new(GeoPoint::new(40.80, -74.02), GeoPoint::new(40.70, -73.93));
    }
}
