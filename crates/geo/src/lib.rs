//! Geographic primitives for the Xhare-a-Ride (XAR) ride-sharing system.
//!
//! This crate provides the lowest tier of the paper's hierarchy: point
//! locations and the *implicit grid* discretization (Definition 1 of the
//! paper). Everything above — landmarks, clusters, rides — is built on
//! top of these primitives by the `xar-discretize` and `xar-core` crates.
//!
//! The main types are:
//!
//! * [`GeoPoint`] — a WGS-84 latitude/longitude pair with great-circle
//!   ([`GeoPoint::haversine_m`]) distance.
//! * [`LocalProjection`] — an equirectangular projection around a
//!   reference point, used to work in metric (east/north metres)
//!   coordinates within a city-sized region.
//! * [`BoundingBox`] — an axis-aligned lat/lon rectangle.
//! * [`GridSpec`] / [`GridId`] — the implicit square grid of
//!   Definition 1: every point location maps to exactly one grid cell,
//!   identified numerically from its latitude and longitude, and each
//!   cell is represented by its centroid for all distance purposes.
//!
//! ```
//! use xar_geo::{BoundingBox, GeoPoint, GridSpec};
//!
//! let a = GeoPoint::new(40.7580, -73.9855); // Times Square
//! let b = GeoPoint::new(40.7484, -73.9857); // Empire State Building
//! assert!((a.haversine_m(&b) - 1_067.0).abs() < 10.0);
//!
//! // Definition 1: a 100 m implicit grid; every point maps to one
//! // cell, represented by its centroid.
//! let grid = GridSpec::new(BoundingBox::new(b, a).expanded(0.01), 100.0);
//! let cell = grid.grid_of(&a);
//! assert!(grid.centroid(cell).haversine_m(&a) < 100.0);
//! ```

#![warn(missing_docs)]

pub mod bbox;
pub mod grid;
pub mod point;
pub mod projection;

pub use bbox::BoundingBox;
pub use grid::{GridId, GridSpec};
pub use point::GeoPoint;
pub use projection::LocalProjection;

/// Mean Earth radius in metres (IUGG value), used by the haversine
/// formula and the equirectangular projection.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Convert a speed in km/h to m/s.
#[inline]
pub fn kmh_to_mps(kmh: f64) -> f64 {
    kmh / 3.6
}

/// Convert a speed in m/s to km/h.
#[inline]
pub fn mps_to_kmh(mps: f64) -> f64 {
    mps * 3.6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_conversions_round_trip() {
        let kmh = 36.0;
        let mps = kmh_to_mps(kmh);
        assert!((mps - 10.0).abs() < 1e-12);
        assert!((mps_to_kmh(mps) - kmh).abs() < 1e-12);
    }
}
