//! Local equirectangular projection.
//!
//! The XAR pre-processing and the synthetic road-network generators work
//! in metric coordinates. Within a city-sized region (tens of
//! kilometres) an equirectangular projection around a reference point is
//! accurate to well under the 100 m grid size used by the system, and is
//! trivially invertible.

use crate::{GeoPoint, EARTH_RADIUS_M};

/// An equirectangular ("plate carrée") projection centred on a
/// reference point.
///
/// `to_xy` maps a [`GeoPoint`] to `(east, north)` metres relative to the
/// reference; `from_xy` inverts it exactly (up to floating-point error).
#[derive(Debug, Clone, Copy)]
pub struct LocalProjection {
    origin: GeoPoint,
    cos_lat0: f64,
}

impl LocalProjection {
    /// Create a projection centred on `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        Self { origin, cos_lat0: origin.lat.to_radians().cos() }
    }

    /// The reference point of the projection.
    #[inline]
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Project a point to `(east_m, north_m)` relative to the origin.
    #[inline]
    pub fn to_xy(&self, p: &GeoPoint) -> (f64, f64) {
        let x = (p.lon - self.origin.lon).to_radians() * self.cos_lat0 * EARTH_RADIUS_M;
        let y = (p.lat - self.origin.lat).to_radians() * EARTH_RADIUS_M;
        (x, y)
    }

    /// Inverse-project `(east_m, north_m)` back to a lat/lon point.
    #[inline]
    pub fn from_xy(&self, x: f64, y: f64) -> GeoPoint {
        let lat = self.origin.lat + (y / EARTH_RADIUS_M).to_degrees();
        let lon = self.origin.lon + (x / (EARTH_RADIUS_M * self.cos_lat0)).to_degrees();
        GeoPoint::new(lat, lon)
    }

    /// Euclidean distance between two points in the projected plane, in
    /// metres. Within a city region this tracks haversine closely and is
    /// cheaper to compute.
    #[inline]
    pub fn euclidean_m(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        let (ax, ay) = self.to_xy(a);
        let (bx, by) = self.to_xy(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proj() -> LocalProjection {
        LocalProjection::new(GeoPoint::new(40.75, -73.98))
    }

    #[test]
    fn origin_maps_to_zero() {
        let p = proj();
        let (x, y) = p.to_xy(&p.origin());
        assert_eq!((x, y), (0.0, 0.0));
    }

    #[test]
    fn round_trip_is_exact() {
        let p = proj();
        for &(x, y) in &[(0.0, 0.0), (1234.5, -987.6), (-15_000.0, 22_000.0)] {
            let g = p.from_xy(x, y);
            let (x2, y2) = p.to_xy(&g);
            assert!((x - x2).abs() < 1e-6, "{x} vs {x2}");
            assert!((y - y2).abs() < 1e-6, "{y} vs {y2}");
        }
    }

    #[test]
    fn euclidean_close_to_haversine_at_city_scale() {
        let p = proj();
        let a = GeoPoint::new(40.70, -74.01);
        let b = GeoPoint::new(40.80, -73.95);
        let e = p.euclidean_m(&a, &b);
        let h = a.haversine_m(&b);
        // < 0.2% error across ~12 km.
        assert!((e - h).abs() / h < 2e-3, "euclidean {e} vs haversine {h}");
    }

    #[test]
    fn axes_are_oriented_east_north() {
        let p = proj();
        let north = p.origin().destination(0.0, 1000.0);
        let east = p.origin().destination(90.0, 1000.0);
        let (nx, ny) = p.to_xy(&north);
        let (ex, ey) = p.to_xy(&east);
        assert!(ny > 990.0 && nx.abs() < 20.0, "north -> ({nx},{ny})");
        assert!(ex > 990.0 && ey.abs() < 20.0, "east -> ({ex},{ey})");
    }
}
