//! Facade crate re-exporting the complete Xhare-a-Ride (XAR) system.
//!
//! See the individual crates for details; this crate exists so that a
//! downstream user can depend on one package and get the whole stack,
//! and so that the repository-level `examples/` and `tests/` have a
//! single coherent API surface.

pub use xar_core as core;
pub use xar_discretize as discretize;
pub use xar_geo as geo;
pub use xar_mmtp as mmtp;
pub use xar_roadnet as roadnet;
pub use xar_transit as transit;
pub use xar_tshare as tshare;
pub use xar_workload as workload;
