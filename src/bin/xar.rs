//! `xar` — command-line front-end to the Xhare-a-Ride system.
//!
//! ```text
//! xar build-region [--rows N] [--cols N] [--seed S] [--delta M]
//!                  [--clusters C] --out region.xarr
//!     Generate a synthetic city, run the pre-processing pipeline and
//!     persist the region index.
//!
//! xar inspect --region region.xarr
//!     Print the discretization summary of a persisted region.
//!
//! xar simulate --region region.xarr [--trips N] [--seed S] [--k N]
//!              [--walk M] [--window S] [--detour M] [--json FILE]
//!              [--metrics-out FILE] [--trace-out FILE]
//!              [--trace-slow-ms F] [--trace-sample P] [--trace-buffer N]
//!              [--events-out FILE] [--baseline tshare] [--threads N]
//!              [--shards N] [--dispatch first|batch:MS]
//!              [--compress-day-s F]
//!     Run the paper's §X.A.2 ride-sharing simulation over a synthetic
//!     taxi day and report outcome + latency statistics. `--json` dumps
//!     the full report (counters, percentiles, metrics) as JSON;
//!     `--metrics-out` dumps just the metric-registry snapshot
//!     (schema in EXPERIMENTS.md). `--trace-out` enables the flight
//!     recorder and writes Chrome trace-event JSON (Perfetto-loadable;
//!     tail sampling keeps every request slower than `--trace-slow-ms`,
//!     default 1.0, plus a `--trace-sample` fraction of the rest,
//!     default 0.01). `--baseline tshare` replays the same trips
//!     through the T-Share baseline so the trace and metrics cover
//!     both systems. `--threads N` (default 1) drives the replay from
//!     N closed-loop workers against the cluster-sharded engine
//!     (`--shards`, default 8); an invalid `--threads` value exits
//!     with code 9. `--dispatch batch:MS` (default `first`) routes
//!     requests through the batch-window assignment policy; invalid
//!     values also exit 9. `--compress-day-s F` rescales the trip day
//!     onto F seconds so millisecond windows hold real batches.
//!     `--events-out FILE` turns on the wide-event sink and writes one
//!     structured decision record per request (outcome, typed rejection
//!     reason, search tier, candidate count, batch-window id,
//!     latencies) as segmented JSONL — the input of `xar logs`.
//!
//! xar bench [--rows N] [--cols N] [--seed S] [--trips N] [--shards N]
//!           [--threads LIST] [--min-scaling F] [--json FILE]
//!           [--against FILE] [--tolerance F]
//!     Engine scaling bench: build a small city in-process and replay
//!     the same trip day through a fresh sharded engine at each worker
//!     count in `--threads` (comma-separated, default `1,2,4,8`),
//!     printing throughput and search p50/p99 per point. Any overbooked
//!     ride, or — with `--min-scaling F` — a final-point search
//!     throughput below `F ×` the first point's, exits with code 7.
//!     `--json` writes the curve machine-readably (the
//!     `results/BENCH_engine.json` schema, see EXPERIMENTS.md).
//!     `--against FILE` compares the fresh curve point-by-point against
//!     a committed baseline curve of the same kind: any throughput drop
//!     or latency growth beyond `--tolerance F` (fractional, default
//!     0.5) exits with code 7; a missing/invalid baseline exits 2.
//!
//! xar bench --search [--rows N] [--cols N] [--seed S] [--trips N]
//!           [--shards N] [--threads LIST] [--searches N]
//!           [--max-p50-us F] [--max-p99-ratio F] [--json FILE]
//!           [--against FILE] [--tolerance F]
//!     Search-path micro-bench: populate one engine from three quarters
//!     of the trip day, then measure the lock-free `search_into`
//!     latency at each searcher count (constant `--searches` total per
//!     point) while a paced background writer keeps snapshot
//!     publication live. `--max-p50-us F` gates the first point's
//!     median and `--max-p99-ratio F` the last point's p99 relative to
//!     the first's (tail flatness); either breach exits with code 7.
//!     `--json` writes the `results/BENCH_search.json` schema.
//!
//! xar logs --in events.jsonl [--outcome X] [--reason Y]
//!          [--slower-than MS] [--request ID] [--top N]
//!     Forensics over a `--events-out` file: per-request decision
//!     records with outcome / rejection-reason / latency filters.
//!     Prints the outcome and rejection-reason histograms, then the
//!     matching records (slowest first, `--top N`, default 10, 0 =
//!     all). `--request ID` answers "why was request R rejected" with
//!     R's full record. Exit codes: 2 = unreadable / invalid file,
//!     3 = no events (or none matching the filters), 9 = invalid
//!     filter value.
//!
//! xar trace --in trace.json [--top N] [--check]
//!     Print the N slowest request timelines (per-span self-time,
//!     lifecycle milestones) from a `--trace-out` file — or, with
//!     `--check`, validate the file and exit with a distinct code per
//!     failure class: 2 = unreadable / invalid JSON, 3 = no complete
//!     request timeline, 4 = missing drop counter.
//!
//! xar top --connect ADDR [--interval-ms N] [--frames N] [--plain]
//!     Live terminal dashboard over a process started with
//!     `xar simulate --serve ADDR`: scrapes `/metrics`, renders rolling
//!     p50/p99/throughput, per-cluster ride occupancy, the
//!     rejection-reason breakdown, the snapshot publication plane
//!     (publishes / freed / retire backlog), tail latency exemplars
//!     (trace ids of the slowest recent requests) and firing SLO
//!     alerts. `--frames N` exits after N refreshes
//!     (CI); `--plain` skips the ANSI screen clearing.
//!
//! xar profile --out FILE [--format collapsed|speedscope] [--alloc]
//!             [--rows N] [--cols N] [--seed S] [--trips N] [--top N]
//!     Continuous-profiling artifact: run an in-process simulation with
//!     the flight recorder keeping every trace, fold the span trees
//!     into a hierarchical self/total-time profile, and write it as
//!     collapsed stacks (flamegraph.pl / inferno) or speedscope JSON.
//!     The written artifact is re-parsed with the in-repo reader before
//!     the command reports success. `--alloc` additionally attributes
//!     heap bytes/allocations to the innermost open span and prints the
//!     per-span table. A top-N self-time summary is always printed.
//! ```
//!
//! Live operational flags on `simulate`: `--serve ADDR` starts the
//! embedded ops-plane HTTP server (`/metrics` with OpenMetrics latency
//! exemplars, `/snapshot`, `/health`, `/alerts`, `/debug/profile`,
//! `/debug/epoch`, `/debug/shards`, `/debug/events`; `ADDR` may use
//! port 0 — the bound
//! address is printed); `--slo RULE` (repeatable) installs burn-rate
//! SLO rules (syntax in EXPERIMENTS.md); `--slo-fail` exits with code 8
//! when any rule fired during the run; `--tick-ms N` sets the windowing
//! tick; `--linger-s F` keeps the process (and server) alive after the
//! simulation so scrapers can observe the final state; `--max-backlog N`
//! turns `/health` 503 while the snapshot retire backlog exceeds `N`
//! and exits with code 10 when it still does at the end of the run.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::process::ExitCode;
use std::sync::Arc;

use xar_obs::serve::OpsPlane;
use xar_obs::slo::{SloEngine, SloRule};
use xar_obs::window::{WindowConfig, WindowStore};

use xar_obs::chrome::{export_chrome, parse_chrome, Attrs, Timeline};
use xar_obs::json::JsonValue;
use xar_obs::TraceConfig;
use xhare_a_ride::core::{
    EngineConfig, Reason, ShardedXarEngine, XarEngine, DEFAULT_SHARDS, MAX_SHARDS,
};
use xhare_a_ride::discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xhare_a_ride::roadnet::{sample_pois, CityConfig, PoiConfig};
use xhare_a_ride::tshare::{TShareConfig, TShareEngine};
use xhare_a_ride::workload::searchbench::request_of;
use xhare_a_ride::workload::{
    generate_trips, percentile_ns, populated_engine, run_parallel_dispatch, run_scaling_point,
    run_search_point, run_simulation, run_simulation_with, run_write_point, scaling_curve_json,
    search_curve_json, write_curve_json, DispatchSpec, ScalingPoint, SearchPoint,
    ShardedXarBackend, SimConfig, TShareBackend, TripGenConfig, WritePoint, XarBackend,
};

/// Flags that take no value (presence alone means `true`).
const SWITCHES: &[&str] = &["check", "slo-fail", "plain", "search", "write", "alloc"];

/// Global allocator: the profiling pass-through. When `xar profile
/// --alloc` is off (the default, and every other subcommand) the hook
/// is one relaxed atomic load per allocation — the disabled-path cost
/// is pinned to zero extra allocations by `crates/obs/tests/
/// profile_overhead.rs`.
#[global_allocator]
static GLOBAL_ALLOC: xar_obs::profile::ProfilingAlloc = xar_obs::profile::ProfilingAlloc::system();

/// A command error carrying its process exit code, so callers (CI, the
/// smoke tests) can branch on the failure class.
struct CmdError {
    code: u8,
    msg: String,
}

impl CmdError {
    /// A generic failure (exit code 1).
    fn general(msg: impl Into<String>) -> Self {
        Self { code: 1, msg: msg.into() }
    }

    /// A failure with a specific exit code.
    fn coded(code: u8, msg: impl Into<String>) -> Self {
        Self { code, msg: msg.into() }
    }
}

impl From<String> for CmdError {
    fn from(msg: String) -> Self {
        CmdError::general(msg)
    }
}

/// Minimal `--key value` flag parser (with a fixed set of valueless
/// switches). Repeated flags accumulate: `get`/`get_opt` read the last
/// occurrence, [`Flags::get_all`] returns every one (`--slo` rules).
struct Flags {
    values: HashMap<String, Vec<String>>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            if SWITCHES.contains(&key) {
                values.entry(key.to_string()).or_default().push("true".to_string());
                continue;
            }
            let Some(v) = it.next() else {
                return Err(format!("flag --{key} is missing a value"));
            };
            values.entry(key.to_string()).or_default().push(v.clone());
        }
        Ok(Self { values })
    }

    fn switch(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get_opt(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    fn get_opt(&self, key: &str) -> Option<&str> {
        self.values.get(key).and_then(|v| v.last()).map(String::as_str)
    }

    fn get_all(&self, key: &str) -> &[String] {
        self.values.get(key).map(Vec::as_slice).unwrap_or_default()
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get_opt(key).ok_or_else(|| format!("missing required flag --{key}"))
    }
}

fn usage() -> &'static str {
    "usage:\n  xar build-region [--rows N] [--cols N] [--seed S] [--delta M | --clusters C] --out FILE\n  xar inspect --region FILE\n  xar simulate --region FILE [--trips N] [--seed S] [--k N] [--walk M] [--window S] [--detour M] [--threads N] [--shards N] [--dispatch first|batch:MS] [--compress-day-s F] [--json FILE] [--metrics-out FILE] [--trace-out FILE] [--trace-slow-ms F] [--trace-sample P] [--trace-buffer N] [--events-out FILE] [--baseline tshare] [--serve ADDR] [--slo RULE]... [--slo-fail] [--tick-ms N] [--linger-s F] [--max-backlog N] [--publish-coalesce-us US]\n  xar bench [--rows N] [--cols N] [--seed S] [--trips N] [--shards N] [--threads LIST] [--min-scaling F] [--json FILE] [--against FILE] [--tolerance F]\n  xar bench --search [--rows N] [--cols N] [--seed S] [--trips N] [--shards N] [--threads LIST] [--searches N] [--max-p50-us F] [--max-p99-ratio F] [--json FILE] [--against FILE] [--tolerance F]\n  xar bench --write [--rows N] [--cols N] [--seed S] [--trips N] [--storm N] [--shards N] [--json FILE] [--against FILE] [--tolerance F]\n  xar logs --in FILE [--outcome X] [--reason Y] [--slower-than MS] [--request ID] [--top N]\n  xar trace --in FILE [--top N] [--check]\n  xar top --connect ADDR [--interval-ms N] [--frames N] [--plain]\n  xar profile --out FILE [--format collapsed|speedscope] [--alloc] [--rows N] [--cols N] [--seed S] [--trips N] [--top N]"
}

fn build_region(flags: &Flags) -> Result<(), String> {
    let rows: usize = flags.get("rows", 60)?;
    let cols: usize = flags.get("cols", 60)?;
    let seed: u64 = flags.get("seed", 1)?;
    let out = flags.require("out")?;
    let goal = if let Some(c) = flags.get_opt("clusters") {
        ClusterGoal::FixedCount(c.parse().map_err(|_| "invalid --clusters".to_string())?)
    } else {
        ClusterGoal::Delta(flags.get("delta", 250.0)?)
    };

    eprintln!("generating {rows}x{cols} city (seed {seed})...");
    let graph = Arc::new(CityConfig::manhattan(rows, cols, seed).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: rows * cols / 2, ..Default::default() });
    eprintln!(
        "pre-processing: {} nodes, {} POIs -> landmarks -> clusters...",
        graph.node_count(),
        pois.len()
    );
    let region =
        RegionIndex::build(graph, &pois, RegionConfig { cluster_goal: goal, ..Default::default() });
    region.save(out).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "region saved to {out}: {} landmarks, {} clusters, epsilon {:.0} m, tables {:.1} MiB",
        region.landmark_count(),
        region.cluster_count(),
        region.epsilon_m(),
        region.heap_bytes() as f64 / (1024.0 * 1024.0),
    );
    Ok(())
}

fn inspect(flags: &Flags) -> Result<(), String> {
    let path = flags.require("region")?;
    let region = RegionIndex::load(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let g = region.graph();
    println!("region file    : {path}");
    println!("road network   : {} way-points, {} segments", g.node_count(), g.edge_count());
    println!("grid           : {} x {} cells of {:.0} m", region.grid().cols(), region.grid().rows(), region.grid().cell_m());
    println!("landmarks      : {}", region.landmark_count());
    println!("clusters       : {}", region.cluster_count());
    println!("epsilon        : {:.0} m (worst intra-cluster driving distance)", region.epsilon_m());
    println!("tables in RAM  : {:.1} MiB", region.heap_bytes() as f64 / (1024.0 * 1024.0));
    let sizes: Vec<usize> = (0..region.cluster_count() as u32)
        .map(|c| region.cluster_members(xhare_a_ride::discretize::ClusterId(c)).len())
        .collect();
    let max = sizes.iter().max().copied().unwrap_or(0);
    let avg = sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64;
    println!("cluster sizes  : avg {avg:.1} landmarks, max {max}");
    Ok(())
}

/// Parse `--threads` as a single worker count (default 1). Invalid
/// values — non-numeric, zero, out of range — exit with the distinct
/// code 9 so scripts can tell a bad invocation from a failed run.
fn parse_threads_flag(flags: &Flags) -> Result<usize, CmdError> {
    match flags.get_opt("threads") {
        None => Ok(1),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if (1..=256).contains(&n) => Ok(n),
            _ => Err(CmdError::coded(
                9,
                format!(
                    "--threads must be an integer in 1..=256, got '{v}' \
                     (use --threads 1 for the serial driver)"
                ),
            )),
        },
    }
}

/// Parse `--threads` as a comma-separated sweep list (`xar bench`;
/// default `1,2,4,8`). Shares the exit-code-9 contract of
/// [`parse_threads_flag`].
fn parse_threads_list(flags: &Flags) -> Result<Vec<usize>, CmdError> {
    let Some(v) = flags.get_opt("threads") else { return Ok(vec![1, 2, 4, 8]) };
    let mut out = Vec::new();
    for part in v.split(',') {
        match part.trim().parse::<usize>() {
            Ok(n) if (1..=256).contains(&n) => out.push(n),
            _ => {
                return Err(CmdError::coded(
                    9,
                    format!(
                        "--threads expects a comma-separated list of integers in 1..=256, \
                         got '{v}'"
                    ),
                ))
            }
        }
    }
    Ok(out)
}

/// Parse `--dispatch` (default `first`); invalid values share the
/// exit-code-9 contract of the other invocation flags.
fn parse_dispatch_flag(flags: &Flags) -> Result<DispatchSpec, CmdError> {
    match flags.get_opt("dispatch") {
        None => Ok(DispatchSpec::First),
        Some(v) => DispatchSpec::parse(v).map_err(|e| CmdError::coded(9, e)),
    }
}

/// Parse `--compress-day-s` (default: off): rescale the generated
/// trip day onto `[0, F]` seconds so millisecond batch windows hold
/// more than one request. Invalid values share the exit-code-9
/// contract.
fn parse_compress_flag(flags: &Flags) -> Result<Option<f64>, CmdError> {
    match flags.get_opt("compress-day-s") {
        None => Ok(None),
        Some(v) => match v.parse::<f64>() {
            Ok(f) if f.is_finite() && f > 0.0 => Ok(Some(f)),
            _ => Err(CmdError::coded(
                9,
                format!("--compress-day-s must be a positive number of seconds, got '{v}'"),
            )),
        },
    }
}

/// Linearly rescale trip pick-up times onto `[0, span_s]`, preserving
/// their order — the request *sequence* is untouched, only the arrival
/// rate changes.
fn compress_day(trips: &mut [xhare_a_ride::workload::Trip], span_s: f64) {
    let Some(first) = trips.first().map(|t| t.pickup_s) else { return };
    let last = trips.last().map(|t| t.pickup_s).unwrap_or(first);
    let span = (last - first).max(f64::MIN_POSITIVE);
    for t in trips.iter_mut() {
        t.pickup_s = (t.pickup_s - first) / span * span_s;
    }
}

/// Parse `--shards` (default [`DEFAULT_SHARDS`]); out-of-range values
/// share the exit-code-9 contract.
fn parse_shards_flag(flags: &Flags) -> Result<usize, CmdError> {
    match flags.get_opt("shards") {
        None => Ok(DEFAULT_SHARDS),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if (1..=MAX_SHARDS).contains(&n) => Ok(n),
            _ => Err(CmdError::coded(
                9,
                format!("--shards must be an integer in 1..={MAX_SHARDS}, got '{v}'"),
            )),
        },
    }
}

/// Parse `--publish-coalesce-us` (default 0 = a publish on every
/// write, i.e. read-your-writes). Positive values let first-match
/// bookings batch their snapshot publications into one per window.
/// Invalid values share the exit-code-9 contract.
fn parse_publish_coalesce_flag(flags: &Flags) -> Result<u64, CmdError> {
    match flags.get_opt("publish-coalesce-us") {
        None => Ok(0),
        Some(v) => v.parse::<u64>().map_err(|_| {
            CmdError::coded(
                9,
                format!(
                    "--publish-coalesce-us must be a non-negative integer of \
                     microseconds, got '{v}'"
                ),
            )
        }),
    }
}

/// Parse `--tolerance` (fractional headroom for `--against`, default
/// 0.5 = 50%); invalid values share the exit-code-9 contract.
fn parse_tolerance_flag(flags: &Flags) -> Result<f64, CmdError> {
    match flags.get_opt("tolerance") {
        None => Ok(0.5),
        Some(v) => match v.parse::<f64>() {
            Ok(f) if f.is_finite() && f > 0.0 => Ok(f),
            _ => Err(CmdError::coded(
                9,
                format!("--tolerance must be a positive fraction (e.g. 0.5), got '{v}'"),
            )),
        },
    }
}

/// `--against` regression gate: compare a freshly measured bench curve
/// point-by-point against a committed baseline of the same kind.
///
/// Points are joined on `point_key` — a workload-independent integer
/// field (`"threads"` for the scaling/search curves, `"mult"` for the
/// write curve), so a small CI smoke city still shares points with a
/// baseline measured on the full bench city. `fresh` holds
/// `(point key value, [(metric key, value)])` per fresh point;
/// `metrics` lists `(key, higher_is_worse)`. The tolerance is a ratio
/// headroom symmetric in direction: latency (higher-is-worse) may grow
/// to `base × (1 + tol)`, throughput may shrink to `base ÷ (1 + tol)` —
/// well-defined for any positive tolerance, including the generous
/// multiples CI uses to absorb cross-machine variance. Baseline points
/// without a matching fresh `threads` value are skipped. Exit 2 = the
/// baseline is unreadable, invalid, the wrong bench kind, or shares no
/// point with the fresh curve; exit 7 = any metric regressed beyond
/// the tolerance.
fn gate_against_baseline(
    path: &str,
    kind: &str,
    point_key: &str,
    tolerance: f64,
    fresh: &[(u64, Vec<(&'static str, f64)>)],
    metrics: &[(&'static str, bool)],
) -> Result<(), CmdError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CmdError::coded(2, format!("cannot read baseline {path}: {e}")))?;
    let doc = xar_obs::json::parse(&text)
        .map_err(|e| CmdError::coded(2, format!("{path}: invalid baseline JSON: {e}")))?;
    let bench = doc.get("bench").and_then(|b| b.as_str()).unwrap_or_default();
    if bench != kind {
        return Err(CmdError::coded(
            2,
            format!("{path}: baseline bench kind is '{bench}', this run produces '{kind}'"),
        ));
    }
    let base_points = doc
        .get("points")
        .and_then(|p| p.as_array())
        .ok_or_else(|| CmdError::coded(2, format!("{path}: baseline has no points array")))?;

    let mut compared = 0usize;
    let mut breaches: Vec<String> = Vec::new();
    for bp in base_points {
        let Some(at) = bp.get(point_key).and_then(|t| t.as_u64()) else { continue };
        let Some((_, values)) = fresh.iter().find(|(t, _)| *t == at) else {
            println!(
                "against        : baseline point {point_key}={at} has no fresh match, skipped"
            );
            continue;
        };
        for &(key, higher_is_worse) in metrics {
            let Some(base) = bp.get(key).and_then(|v| v.as_f64()) else { continue };
            let Some(&(_, new)) = values.iter().find(|(k, _)| *k == key) else { continue };
            if base <= 0.0 {
                continue;
            }
            compared += 1;
            let (bound, breached, dir) = if higher_is_worse {
                (base * (1.0 + tolerance), new > base * (1.0 + tolerance), "max")
            } else {
                (base / (1.0 + tolerance), new < base / (1.0 + tolerance), "min")
            };
            println!(
                "against        : {point_key}={at} {key} {new:.0} vs baseline {base:.0} \
                 ({dir} {bound:.0}){}",
                if breached { "  REGRESSION" } else { "" },
            );
            if breached {
                breaches.push(format!(
                    "{point_key}={at} {key} {new:.0} breaches {dir} {bound:.0} \
                     (baseline {base:.0}, tolerance {tolerance})"
                ));
            }
        }
    }
    if compared == 0 {
        return Err(CmdError::coded(
            2,
            format!("{path}: baseline shares no comparable point with this run"),
        ));
    }
    if !breaches.is_empty() {
        return Err(CmdError::coded(
            7,
            format!("bench regression vs {path}: {}", breaches.join("; ")),
        ));
    }
    println!("against        : {path} ok ({compared} comparisons within {tolerance}x headroom)");
    Ok(())
}

/// The simulation's system under test: the serial single-engine
/// backend (default; carries the full request-tracing path) or the
/// sharded engine driven by N closed-loop workers.
enum SimUnderTest {
    Serial(Box<XarBackend>),
    Parallel(ShardedXarBackend),
}

fn simulate(flags: &Flags) -> Result<(), CmdError> {
    // Validated before any heavy work so a bad value fails fast with
    // its distinct exit code.
    let threads = parse_threads_flag(flags)?;
    let shards = parse_shards_flag(flags)?;
    let dispatch = parse_dispatch_flag(flags)?;
    let compress = parse_compress_flag(flags)?;
    let publish_coalesce_us = parse_publish_coalesce_flag(flags)?;
    let path = flags.require("region")?;
    let trips_n: usize = flags.get("trips", 10_000)?;
    let seed: u64 = flags.get("seed", 0x7A11)?;
    let k: usize = flags.get("k", usize::MAX)?;
    let walk: f64 = flags.get("walk", 800.0)?;
    let window: f64 = flags.get("window", 1_200.0)?;
    let detour: f64 = flags.get("detour", 4_000.0)?;

    let events_out = flags.get_opt("events-out").map(str::to_string);
    if events_out.is_some() {
        xar_obs::events::configure(xar_obs::events::DEFAULT_CAPACITY);
        xar_obs::events::set_enabled(true);
    }
    let trace_out = flags.get_opt("trace-out").map(str::to_string);
    if trace_out.is_some() {
        let slow_ms: f64 = flags.get("trace-slow-ms", 1.0)?;
        let sample: f64 = flags.get("trace-sample", 0.01)?;
        let buffer: usize = flags.get("trace-buffer", 262_144)?;
        if !(0.0..=1.0).contains(&sample) {
            return Err(CmdError::general("--trace-sample must be a probability in [0, 1]"));
        }
        let rec = xar_obs::trace::recorder();
        rec.configure(TraceConfig {
            slow_threshold_ns: (slow_ms * 1e6).max(0.0) as u64,
            sample_per_mille: (sample * 1000.0).round() as u32,
            capacity_events: buffer,
            ..TraceConfig::default()
        });
        rec.set_enabled(true);
    }

    let region =
        Arc::new(RegionIndex::load(path).map_err(|e| format!("cannot read {path}: {e}"))?);
    let mut trips = generate_trips(
        region.graph(),
        &TripGenConfig { count: trips_n, seed, ..Default::default() },
    );
    if let Some(span_s) = compress {
        compress_day(&mut trips, span_s);
        eprintln!(
            "day compressed : {} trips over {span_s} s ({:.0} req/s)",
            trips.len(),
            trips.len() as f64 / span_s,
        );
    }
    let trips = trips;
    eprintln!("simulating {} trips on {} clusters...", trips.len(), region.cluster_count());
    let mut sim = if threads == 1 {
        SimUnderTest::Serial(Box::new(XarBackend::new(XarEngine::new(
            Arc::clone(&region),
            EngineConfig::default(),
        ))))
    } else {
        eprintln!("parallel driver: {threads} worker threads over {shards} shards");
        SimUnderTest::Parallel(ShardedXarBackend::new(ShardedXarEngine::new(
            Arc::clone(&region),
            EngineConfig::default(),
            shards,
        )))
    };
    if publish_coalesce_us > 0 {
        match &sim {
            SimUnderTest::Parallel(b) => {
                b.engine.set_publish_coalesce_us(publish_coalesce_us);
                eprintln!("publish window : coalescing first-match publishes over {publish_coalesce_us} µs");
            }
            // The serial engine has no snapshot plane — nothing to
            // coalesce, but say so instead of silently ignoring it.
            SimUnderTest::Serial(_) => {
                eprintln!(
                    "publish window : --publish-coalesce-us ignored on the serial driver \
                     (use --threads > 1)"
                );
            }
        }
    }
    let cfg = SimConfig { walk_limit_m: walk, window_s: window, detour_limit_m: detour, k, ..Default::default() };

    // Live operational plane: windowed series + SLO rules + optionally
    // the embedded HTTP server, all over the backend's own registry.
    let serve_addr = flags.get_opt("serve").map(str::to_string);
    let slo_fail = flags.switch("slo-fail");
    let tick_ms: u64 = flags.get("tick-ms", 1_000)?;
    let linger_s: f64 = flags.get("linger-s", 0.0)?;
    let max_backlog: Option<i64> = match flags.get_opt("max-backlog") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| {
            CmdError::general(format!("invalid value '{v}' for --max-backlog"))
        })?),
    };
    if tick_ms == 0 {
        return Err(CmdError::general("--tick-ms must be positive"));
    }
    let mut rules = Vec::new();
    for spec in flags.get_all("slo") {
        rules.push(SloRule::parse(spec).map_err(|e| format!("--slo '{spec}': {e}"))?);
    }
    let plane = if serve_addr.is_some() || !rules.is_empty() || slo_fail {
        let registry = match &sim {
            SimUnderTest::Serial(b) => b.engine.metrics().registry(),
            SimUnderTest::Parallel(b) => b.engine.registry(),
        };
        // Ring capacity: enough ticks to cover the 60 s rolling window.
        let capacity = (60_000_u64.div_ceil(tick_ms) as usize + 1).clamp(8, 4_096);
        let mut plane = OpsPlane::new(
            registry,
            Arc::new(WindowStore::new(WindowConfig { tick_ms, capacity })),
            Arc::new(SloEngine::new(rules)),
        );
        plane.max_backlog = max_backlog;
        // Live debug introspection: the epoch domain is process-global;
        // the shard map exists only on the parallel driver.
        plane.debug.epoch =
            Some(Arc::new(|| xhare_a_ride::core::snapshot::epoch_debug().to_json()));
        if let SimUnderTest::Parallel(b) = &sim {
            let engine = b.engine.clone();
            plane.debug.shards = Some(Arc::new(move || engine.shard_debug_json()));
        }
        Some(plane)
    } else {
        None
    };
    let mut server = None;
    let mut inline_ticker = None;
    if let Some(plane) = &plane {
        if let Some(addr) = &serve_addr {
            let s = xar_obs::serve::serve(addr.as_str(), plane.clone())
                .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
            // The bound address line is machine-read (CI, `xar top`
            // scripts) — keep its shape stable and flush it promptly.
            println!("ops plane      : http://{}", s.local_addr());
            std::io::stdout().flush().ok();
            server = Some(s);
        } else {
            // SLO rules without a server still need a ticker so the
            // burn-rate windows advance during the run.
            let plane = plane.clone();
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop2 = Arc::clone(&stop);
            let handle = std::thread::spawn(move || {
                let tick = std::time::Duration::from_millis(plane.window.tick_ms());
                let slice = tick.min(std::time::Duration::from_millis(25));
                let mut elapsed = std::time::Duration::ZERO;
                while !stop2.load(std::sync::atomic::Ordering::SeqCst) {
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed >= tick {
                        elapsed = std::time::Duration::ZERO;
                        plane.tick();
                    }
                }
            });
            inline_ticker = Some((stop, handle));
        }
    }

    let report = match &mut sim {
        SimUnderTest::Serial(b) => {
            let mut policy = dispatch.build(&cfg);
            run_simulation_with(b.as_mut(), &trips, &cfg, policy.as_mut())
        }
        SimUnderTest::Parallel(b) => run_parallel_dispatch(&*b, &trips, &cfg, threads, dispatch),
    };

    // Snapshot the wide-event plane before the baseline replay so the
    // file covers exactly the system under test.
    if let Some(path) = &events_out {
        xar_obs::events::set_enabled(false);
        let snap = xar_obs::events::snapshot();
        std::fs::write(path, xar_obs::events::to_jsonl(&snap))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "events         : {path} ({} of {} events kept, {} dropped)",
            snap.kept(),
            snap.emitted,
            snap.dropped,
        );
    }

    println!("trips          : {}", trips.len());
    // Machine-read by the CI dispatch gate — keep the line shape stable.
    println!(
        "dispatch       : policy={} service_rate={:.6} stale_commits={} windows={} swaps={}",
        dispatch.label(),
        report.service_rate(),
        report.stale_commits,
        report.window_ns.len(),
        report.swaps,
    );
    println!("booked         : {} ({:.1}% share rate)", report.booked, report.share_rate() * 100.0);
    println!("created        : {}", report.created);
    println!("unservable     : {}", report.unservable);
    println!(
        "search latency : avg {:.1} µs, p95 {:.1} µs, p99 {:.1} µs",
        report.mean_search_ms() * 1e3,
        percentile_ns(&report.search_ns, 95.0) / 1e3,
        percentile_ns(&report.search_ns, 99.0) / 1e3,
    );
    println!(
        "create latency : p50 {:.1} µs   book latency: p50 {:.1} µs",
        percentile_ns(&report.create_ns, 50.0) / 1e3,
        percentile_ns(&report.book_ns, 50.0) / 1e3,
    );
    let (sps, heap_bytes) = match &sim {
        SimUnderTest::Serial(b) => {
            (b.engine.stats().snapshot().shortest_paths, b.engine.heap_bytes())
        }
        SimUnderTest::Parallel(b) => {
            (b.engine.stats().snapshot().shortest_paths, b.engine.heap_bytes())
        }
    };
    println!("shortest paths : {sps} (never during search)");
    println!("runtime memory : {:.1} MiB", heap_bytes as f64 / (1024.0 * 1024.0));
    for line in report.phase_summary() {
        println!("phase          : {line}");
    }
    if let Some(json) = flags.get_opt("json") {
        std::fs::write(json, report.to_json())
            .map_err(|e| format!("cannot write {json}: {e}"))?;
        println!("raw report     : {json}");
    }
    if let Some(path) = flags.get_opt("metrics-out") {
        let registry = report.registry.as_ref().expect("simulation attaches a registry");
        std::fs::write(path, registry.snapshot_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics        : {path}");
    }

    if let Some(baseline) = flags.get_opt("baseline") {
        if baseline != "tshare" {
            return Err(CmdError::general(format!(
                "unknown baseline '{baseline}' (only 'tshare' is supported)"
            )));
        }
        eprintln!("replaying {} trips through the T-Share baseline...", trips.len());
        let mut ts = TShareBackend::new(TShareEngine::new(
            Arc::clone(region.graph()),
            TShareConfig::default(),
        ));
        let tr = run_simulation(&mut ts, &trips, &cfg);
        println!(
            "baseline       : tshare booked {} ({:.1}% share rate), search p95 {:.1} µs",
            tr.booked,
            tr.share_rate() * 100.0,
            percentile_ns(&tr.search_ns, 95.0) / 1e3,
        );
    }

    if let Some(path) = trace_out {
        let rec = xar_obs::trace::recorder();
        rec.set_enabled(false);
        std::fs::write(&path, export_chrome(&rec.snapshot()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let st = rec.stats();
        println!(
            "trace          : {path} ({} of {} traces kept, {} sampled out, {} events dropped)",
            st.kept_traces, st.started_traces, st.sampled_out_traces, st.dropped_events,
        );
    }

    if let Some(plane) = &plane {
        // Keep the process (and server) alive so scrapers can observe
        // the post-run state, then fold the final partial interval into
        // the windows before the SLO verdict.
        if linger_s > 0.0 {
            eprintln!("lingering {linger_s} s for scrapers...");
            std::thread::sleep(std::time::Duration::from_secs_f64(linger_s));
        }
        plane.tick();
        if let Some(mut s) = server.take() {
            s.shutdown();
        }
        if let Some((stop, handle)) = inline_ticker.take() {
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            let _ = handle.join();
        }
        let fired: Vec<String> = plane
            .slo
            .statuses()
            .into_iter()
            .filter(|s| s.ever_fired)
            .map(|s| s.name)
            .collect();
        if !fired.is_empty() {
            println!("slo fired      : {}", fired.join(", "));
            if slo_fail {
                return Err(CmdError::coded(8, format!("SLO burn-rate alert(s) fired: {}", fired.join(", "))));
            }
        } else if !plane.slo.rules().is_empty() {
            println!("slo fired      : none");
        }
    }
    if let Some(max) = max_backlog {
        let registry = match &sim {
            SimUnderTest::Serial(b) => b.engine.metrics().registry(),
            SimUnderTest::Parallel(b) => b.engine.registry(),
        };
        let backlog = registry.gauge("engine.snapshot_backlog").get();
        println!("backlog gate   : {backlog} retired snapshot(s) pending (gate {max})");
        if backlog > max {
            return Err(CmdError::coded(
                10,
                format!(
                    "snapshot retire backlog {backlog} exceeds --max-backlog {max} — \
                     a reader is stuck pinned to an old epoch"
                ),
            ));
        }
    }
    Ok(())
}

/// `xar bench`: the engine scaling bench. Builds a small city
/// in-process, replays the same trip day through a fresh sharded
/// engine at each worker count, and gates on capacity safety (any
/// overbooked ride ⇒ exit 7) and — with `--min-scaling F` — on the
/// final point's search throughput being at least `F ×` the first
/// point's (anti-regression, exit 7).
fn bench(flags: &Flags) -> Result<(), CmdError> {
    if flags.switch("search") {
        return bench_search(flags);
    }
    if flags.switch("write") {
        return bench_write(flags);
    }
    let thread_counts = parse_threads_list(flags)?;
    let shards = parse_shards_flag(flags)?;
    let rows: usize = flags.get("rows", 30)?;
    let cols: usize = flags.get("cols", 30)?;
    let seed: u64 = flags.get("seed", 0xBE7C)?;
    let trips_n: usize = flags.get("trips", 2_000)?;
    let min_scaling: f64 = flags.get("min-scaling", 0.0)?;

    eprintln!("bench city: {rows}x{cols} (seed {seed}), {trips_n} trips, {shards} shards");
    let graph = Arc::new(CityConfig::manhattan(rows, cols, seed).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: rows * cols / 2, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
    ));
    let trips =
        generate_trips(&graph, &TripGenConfig { count: trips_n, seed, ..Default::default() });
    let cfg = SimConfig::default();
    let engine_cfg = EngineConfig::default();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut points: Vec<ScalingPoint> = Vec::new();
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "threads", "wall s", "req/s", "searches/s", "p50 µs", "p99 µs", "overbooked"
    );
    for &t in &thread_counts {
        let p = run_scaling_point(&region, &engine_cfg, &trips, &cfg, t, shards);
        println!(
            "{:>7} {:>9.3} {:>12.0} {:>12.0} {:>12.1} {:>12.1} {:>10}",
            p.threads,
            p.wall_s,
            p.requests_per_s,
            p.searches_per_s,
            p.search_p50_ns / 1e3,
            p.search_p99_ns / 1e3,
            p.overbooked_rides,
        );
        points.push(p);
    }

    if let Some(json) = flags.get_opt("json") {
        let meta = [
            ("rows", rows as f64),
            ("cols", cols as f64),
            ("seed", seed as f64),
            ("trips", trips_n as f64),
        ];
        std::fs::write(json, scaling_curve_json(&meta, cores, &points))
            .map_err(|e| format!("cannot write {json}: {e}"))?;
        println!("curve          : {json} (cores {cores})");
    }

    // Gates — capacity safety first (always on), then the scaling
    // anti-regression when requested.
    if let Some(p) = points.iter().find(|p| p.overbooked_rides > 0) {
        return Err(CmdError::coded(
            7,
            format!(
                "{} ride(s) overbooked at {} threads — the engine lost seat updates",
                p.overbooked_rides, p.threads
            ),
        ));
    }
    if min_scaling > 0.0 && points.len() >= 2 {
        let first = &points[0];
        let last = &points[points.len() - 1];
        let ratio = last.searches_per_s / first.searches_per_s.max(1e-9);
        println!(
            "scaling        : {} threads at {:.2}x the {}-thread search throughput (gate {min_scaling}x)",
            last.threads, ratio, first.threads
        );
        if ratio < min_scaling {
            return Err(CmdError::coded(
                7,
                format!(
                    "search throughput at {} threads is {ratio:.2}x the {}-thread run, \
                     below the {min_scaling}x gate",
                    last.threads, first.threads
                ),
            ));
        }
    }
    if let Some(base) = flags.get_opt("against") {
        let tol = parse_tolerance_flag(flags)?;
        let fresh: Vec<(u64, Vec<(&'static str, f64)>)> = points
            .iter()
            .map(|p| {
                (
                    p.threads as u64,
                    vec![
                        ("requests_per_s", p.requests_per_s),
                        ("search_p50_ns", p.search_p50_ns),
                        ("search_p99_ns", p.search_p99_ns),
                    ],
                )
            })
            .collect();
        gate_against_baseline(
            base,
            "engine_scaling",
            "threads",
            tol,
            &fresh,
            &[("requests_per_s", false), ("search_p50_ns", true), ("search_p99_ns", true)],
        )?;
    }
    Ok(())
}

/// `xar bench --search`: the search-path micro-bench. Populates one
/// engine by replaying three quarters of the trip day, then measures
/// lock-free `search_into` latency percentiles at each searcher count
/// (constant total searches per point) while a paced background writer
/// keeps snapshot publication live. Gates (exit 7): `--max-p50-us F`
/// bounds the first point's median; `--max-p99-ratio F` bounds the last
/// point's p99 relative to the first's (tail flatness — the lock-free
/// read path's defining property).
fn bench_search(flags: &Flags) -> Result<(), CmdError> {
    let thread_counts = parse_threads_list(flags)?;
    let shards = parse_shards_flag(flags)?;
    let rows: usize = flags.get("rows", 30)?;
    let cols: usize = flags.get("cols", 30)?;
    let seed: u64 = flags.get("seed", 0xBE7C)?;
    let trips_n: usize = flags.get("trips", 2_000)?;
    let searches: usize = flags.get("searches", 10_000)?;
    let max_p50_us: f64 = flags.get("max-p50-us", 0.0)?;
    let max_p99_ratio: f64 = flags.get("max-p99-ratio", 0.0)?;

    eprintln!(
        "search bench city: {rows}x{cols} (seed {seed}), {trips_n} trips, {shards} shards, \
         {searches} searches/point"
    );
    let graph = Arc::new(CityConfig::manhattan(rows, cols, seed).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: rows * cols / 2, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
    ));
    let trips =
        generate_trips(&graph, &TripGenConfig { count: trips_n, seed, ..Default::default() });
    let cfg = SimConfig::default();
    let engine_cfg = EngineConfig::default();
    let split = trips.len() * 3 / 4;
    let reqs: Vec<_> = trips.iter().map(|t| request_of(t, &cfg)).collect();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut points: Vec<SearchPoint> = Vec::new();
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "threads", "searches", "p50 µs", "p99 µs", "matches"
    );
    for &t in &thread_counts {
        // Fresh engine per point: the writer mutates state, so points
        // must not inherit each other's churn.
        let engine = populated_engine(&region, &engine_cfg, &trips[..split], &cfg, shards);
        let p = run_search_point(&engine, &reqs, &trips[split..], &cfg, t, searches);
        println!(
            "{:>8} {:>10} {:>12.1} {:>12.1} {:>10}",
            p.threads,
            p.searches,
            p.p50_ns / 1e3,
            p.p99_ns / 1e3,
            p.matches,
        );
        points.push(p);
    }

    if let Some(json) = flags.get_opt("json") {
        let meta = [
            ("rows", rows as f64),
            ("cols", cols as f64),
            ("seed", seed as f64),
            ("trips", trips_n as f64),
            ("shards", shards as f64),
        ];
        std::fs::write(json, search_curve_json(&meta, cores, &points))
            .map_err(|e| format!("cannot write {json}: {e}"))?;
        println!("curve          : {json} (cores {cores})");
    }

    if max_p50_us > 0.0 {
        let p50_us = points[0].p50_ns / 1e3;
        println!(
            "p50 gate       : {} thread(s) at {p50_us:.1} µs (gate {max_p50_us} µs)",
            points[0].threads
        );
        if p50_us > max_p50_us {
            return Err(CmdError::coded(
                7,
                format!(
                    "search p50 at {} thread(s) is {p50_us:.1} µs, above the \
                     {max_p50_us} µs gate",
                    points[0].threads
                ),
            ));
        }
    }
    if max_p99_ratio > 0.0 && points.len() >= 2 {
        let first = &points[0];
        let last = &points[points.len() - 1];
        let ratio = last.p99_ns / first.p99_ns.max(1e-9);
        println!(
            "p99 flatness   : {} threads at {ratio:.2}x the {}-thread p99 (gate {max_p99_ratio}x)",
            last.threads, first.threads
        );
        if ratio > max_p99_ratio {
            return Err(CmdError::coded(
                7,
                format!(
                    "search p99 at {} threads is {ratio:.2}x the {}-thread value, above \
                     the {max_p99_ratio}x gate — the read path is blocking somewhere",
                    last.threads, first.threads
                ),
            ));
        }
    }
    if let Some(base) = flags.get_opt("against") {
        let tol = parse_tolerance_flag(flags)?;
        let fresh: Vec<(u64, Vec<(&'static str, f64)>)> = points
            .iter()
            .map(|p| {
                (
                    p.threads as u64,
                    vec![("search_p50_ns", p.p50_ns), ("search_p99_ns", p.p99_ns)],
                )
            })
            .collect();
        gate_against_baseline(
            base,
            "search_microbench",
            "threads",
            tol,
            &fresh,
            &[("search_p50_ns", true), ("search_p99_ns", true)],
        )?;
    }
    Ok(())
}

/// `xar bench --write`: the write-path micro-bench. For each
/// population multiplier a fresh sharded engine is filled with pure
/// ride creates, then a fixed booking storm measures end-to-end
/// `book_checked` latency and snapshot publish cost, replayed twice —
/// incremental publication vs forced full rebuilds (DESIGN.md §5f).
/// The sweep holds ride density constant (city side ∝ √mult): the
/// shard grows 8× while the detour-bounded dirty set stays fixed, so
/// incremental publish cost should stay flat-ish as full rebuilds
/// climb.
/// `--against` joins the committed `results/BENCH_write.json` baseline
/// on the workload-independent `mult` field (same contract as the
/// other bench gates: exit 2 bad baseline, exit 7 regression).
fn bench_write(flags: &Flags) -> Result<(), CmdError> {
    const POP_MULTS: [usize; 4] = [1, 2, 4, 8];
    const MAX_MULT: usize = 8;
    let shards = parse_shards_flag(flags)?;
    let rows: usize = flags.get("rows", 30)?;
    let cols: usize = flags.get("cols", 30)?;
    let seed: u64 = flags.get("seed", 0xBE7C)?;
    // The write path is the subject: a bad workload size is a bad
    // invocation, same exit-9 contract as the other flags.
    let trips_n: usize = match flags.get_opt("trips") {
        None => 2_000,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 16 => n,
            _ => {
                return Err(CmdError::coded(
                    9,
                    format!("--trips must be an integer >= 16 for the write bench, got '{v}'"),
                ))
            }
        },
    };
    let storm_n: usize = flags.get("storm", 500)?;

    eprintln!(
        "write bench base city: {rows}x{cols} (seed {seed}), {trips_n} trips, {shards} shards, \
         storm {storm_n} — side scales with sqrt(mult), constant ride density"
    );
    // Tight detour budgets keep each booking's dirty set small relative
    // to the region — the regime incremental publication exists for
    // (matches `bench_write`'s standalone harness).
    let cfg = SimConfig { detour_limit_m: 1_200.0, ..SimConfig::default() };
    let engine_cfg = EngineConfig::default();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut points: Vec<WritePoint> = Vec::new();
    println!(
        "{:>5} {:>8} {:>9} {:>9} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "mult", "rides", "clusters", "bookings", "book p50 µs", "pub p50 µs", "full pub p50",
        "dirty/pub", "partial"
    );
    for m in POP_MULTS {
        // Constant-density sweep: the city area grows with the
        // population, so rides-per-cluster is fixed and incremental
        // publish cost — bounded by the detour-budget dirty set — has
        // no reason to grow with the shard.
        let side_scale = (m as f64).sqrt();
        let (r, c) =
            ((rows as f64 * side_scale).round() as usize, (cols as f64 * side_scale).round() as usize);
        let graph = Arc::new(CityConfig::manhattan(r, c, seed).generate());
        let pois = sample_pois(&graph, &PoiConfig { count: r * c / 2, ..Default::default() });
        let region = Arc::new(RegionIndex::build(
            Arc::clone(&graph),
            &pois,
            RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
        ));
        // The trip-length cap is the other half of constant density:
        // trips stay metropolitan-local as the map grows, so ride
        // routes — and the dirty set a booking re-indexes — do not
        // stretch with the city.
        let trips = generate_trips(
            &graph,
            &TripGenConfig { count: trips_n, seed, max_trip_m: 2_500.0, ..Default::default() },
        );

        // Trips are time-sorted: populations and the storm are strided
        // subsets so every one spans the whole day and the storm's
        // request windows overlap live rides.
        let evens: Vec<_> = trips.iter().step_by(2).copied().collect();
        let odds: Vec<_> = trips.iter().skip(1).step_by(2).copied().collect();
        let storm_len = storm_n.clamp(1, odds.len());
        let storm: Vec<_> =
            odds.iter().step_by((odds.len() / storm_len).max(1)).copied().collect();
        let populate: Vec<_> = evens.iter().step_by(MAX_MULT / m).copied().collect();

        let p = run_write_point(&region, &engine_cfg, &populate, &storm, &cfg, shards, m);
        println!(
            "{:>5} {:>8} {:>9} {:>9} {:>12.1} {:>12.1} {:>14.1} {:>14.1} {:>8}",
            p.mult,
            p.rides,
            p.clusters,
            p.bookings,
            p.book_p50_ns / 1e3,
            p.publish_p50_ns / 1e3,
            p.full_publish_p50_ns / 1e3,
            p.dirty_clusters_mean,
            p.partial_publishes,
        );
        points.push(p);
    }

    if let Some(json) = flags.get_opt("json") {
        let meta = [
            ("base_rows", rows as f64),
            ("base_cols", cols as f64),
            ("seed", seed as f64),
            ("trips", trips_n as f64),
            ("storm", storm_n as f64),
            ("shards", shards as f64),
        ];
        std::fs::write(json, write_curve_json(&meta, cores, &points))
            .map_err(|e| format!("cannot write {json}: {e}"))?;
        println!("curve          : {json} (cores {cores})");
    }

    if let Some(base) = flags.get_opt("against") {
        let tol = parse_tolerance_flag(flags)?;
        let fresh: Vec<(u64, Vec<(&'static str, f64)>)> = points
            .iter()
            .map(|p| {
                (
                    p.mult as u64,
                    vec![
                        ("book_p50_ns", p.book_p50_ns),
                        ("book_p99_ns", p.book_p99_ns),
                        ("publish_p50_ns", p.publish_p50_ns),
                        ("publish_p99_ns", p.publish_p99_ns),
                    ],
                )
            })
            .collect();
        gate_against_baseline(
            base,
            "write_microbench",
            "mult",
            tol,
            &fresh,
            &[
                ("book_p50_ns", true),
                ("book_p99_ns", true),
                ("publish_p50_ns", true),
                ("publish_p99_ns", true),
            ],
        )?;
    }
    Ok(())
}

/// Render one attribute value compactly (`3`, `2.5`, `booked`, ...).
fn attr_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Number(n) => format!("{n}"),
        JsonValue::String(s) => s.clone(),
        JsonValue::Array(_) | JsonValue::Object(_) => "...".into(),
    }
}

fn attr_line(attrs: &Attrs) -> String {
    let mut out = String::new();
    for (k, v) in attrs {
        out.push_str(&format!(" {k}={}", attr_value(v)));
    }
    out
}

/// Recursive span printer: duration, self-time, attrs, then nested
/// spans and the instants that fired while this span was innermost.
fn print_span(node: &xar_obs::chrome::SpanNode, root_start_us: f64, depth: usize) {
    let indent = "  ".repeat(depth);
    println!(
        "  {indent}{:<24} +{:9.1} µs  dur {:9.1} µs  self {:9.1} µs{}",
        node.name,
        node.start_us - root_start_us,
        node.dur_us,
        node.self_us,
        attr_line(&node.attrs),
    );
    for (name, ts_us, attrs) in &node.instants {
        println!(
            "  {indent}  * {:<20} +{:9.1} µs{}",
            name,
            ts_us - root_start_us,
            attr_line(attrs),
        );
    }
    for child in &node.children {
        print_span(child, root_start_us, depth + 1);
    }
}

/// `xar trace`: inspect (or, with `--check`, validate) a Chrome trace
/// file written by `xar simulate --trace-out`. Check failures exit
/// with a distinct code per class: 2 = unreadable / invalid JSON,
/// 3 = no complete request timeline, 4 = missing drop counter.
fn trace_cmd(flags: &Flags) -> Result<(), CmdError> {
    let path = flags.require("in")?;
    let top: usize = flags.get("top", 10)?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CmdError::coded(2, format!("cannot read {path}: {e}")))?;
    let parsed =
        parse_chrome(&text).map_err(|e| CmdError::coded(2, format!("{path}: {e}")))?;
    let timelines = Timeline::build(&parsed);
    let requests: Vec<&Timeline> =
        timelines.iter().filter(|t| t.root.name == "request").collect();

    if flags.switch("check") {
        // The in-tree CI validator: a trace file is healthy when it is
        // valid Chrome JSON (parse_chrome above), carries at least one
        // complete request timeline, and self-describes its drop
        // accounting.
        if requests.is_empty() {
            return Err(CmdError::coded(3, format!("{path}: no complete 'request' timeline")));
        }
        if !parsed.has_drop_counter {
            return Err(CmdError::coded(4, format!("{path}: missing 'xar' drop-counter block")));
        }
        println!(
            "ok: {} events, {} timelines ({} requests), {}/{} traces kept, {} events dropped",
            parsed.events.len(),
            timelines.len(),
            requests.len(),
            parsed.kept_traces,
            parsed.started_traces,
            parsed.dropped_events,
        );
        return Ok(());
    }

    println!(
        "{path}: {} events, {} traces kept of {} started ({} sampled out), {} events dropped",
        parsed.events.len(),
        parsed.kept_traces,
        parsed.started_traces,
        parsed.sampled_out_traces,
        parsed.dropped_events,
    );
    let mut slowest = requests;
    slowest.sort_by(|a, b| {
        b.root.dur_us.partial_cmp(&a.root.dur_us).unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("{} request timelines; {} slowest:", slowest.len(), top.min(slowest.len()));
    for (i, t) in slowest.iter().take(top).enumerate() {
        println!(
            "\n#{:<2} trace {}  {:.1} µs  {} spans{}",
            i + 1,
            t.trace,
            t.root.dur_us,
            t.span_count(),
            attr_line(&t.root.attrs),
        );
        print_span(&t.root, t.root.start_us, 0);
        for (name, ts_us, attrs) in &t.lifecycle {
            println!(
                "    ~ {:<20} +{:9.1} µs{}",
                name,
                ts_us - t.root.start_us,
                attr_line(attrs),
            );
        }
    }
    Ok(())
}

/// Render one parsed wide event as a single forensics line.
fn event_line(e: &xar_obs::events::ParsedEvent) -> String {
    let mut line = format!(
        "req {:<8} t={:>8.1}s  {:<10} reason={:<24} tier={} cand={:<4} matches={:<3} \
         stale={:<2} window={:<5} search={:>8.1}µs book={:>7.1}µs",
        e.request_id,
        e.sim_t_s,
        e.outcome,
        e.reason,
        e.tier,
        e.candidates,
        e.matches,
        e.stale,
        e.window,
        e.search_ns as f64 / 1e3,
        e.book_ns as f64 / 1e3,
    );
    if let Some(ride) = e.ride {
        line.push_str(&format!(
            "  ride={ride} walk={:.0}m detour={:.0}m wait={:.0}s",
            e.walk_m, e.detour_m, e.wait_s
        ));
    }
    line
}

/// `xar logs`: query a `--events-out` JSONL file. Prints the outcome
/// and rejection-reason histograms plus the matching records, slowest
/// (search + book time) first. Exit codes: 2 = unreadable / invalid
/// file, 3 = no events (or none matching the filters), 9 = invalid
/// filter value.
fn logs_cmd(flags: &Flags) -> Result<(), CmdError> {
    let path = flags.require("in")?;

    // Validate filters before touching the file so a bad invocation
    // fails fast with its distinct code.
    let outcome = match flags.get_opt("outcome") {
        None => None,
        Some(v) if ["booked", "created", "unservable"].contains(&v) => Some(v.to_string()),
        Some(v) => {
            return Err(CmdError::coded(
                9,
                format!("--outcome must be booked|created|unservable, got '{v}'"),
            ))
        }
    };
    let reason = match flags.get_opt("reason") {
        None => None,
        // Accept exactly the closed taxonomy ("unknown" included — a
        // healthy file has none, which is precisely what one greps for).
        Some(v) if Reason::from_code(v).code() == v => Some(v.to_string()),
        Some(v) => {
            let all: Vec<&str> = Reason::ALL.iter().map(|r| r.code()).collect();
            return Err(CmdError::coded(
                9,
                format!("--reason '{v}' is not in the taxonomy ({})", all.join(", ")),
            ));
        }
    };
    let slower_than_ns = match flags.get_opt("slower-than") {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(ms) if ms.is_finite() && ms >= 0.0 => Some((ms * 1e6) as u64),
            _ => {
                return Err(CmdError::coded(
                    9,
                    format!("--slower-than must be a non-negative number of ms, got '{v}'"),
                ))
            }
        },
    };
    let request: Option<u64> = match flags.get_opt("request") {
        None => None,
        Some(v) => match v.parse() {
            Ok(id) => Some(id),
            Err(_) => {
                return Err(CmdError::coded(
                    9,
                    format!("--request must be a numeric request id, got '{v}'"),
                ))
            }
        },
    };
    let top: usize = flags
        .get_opt("top")
        .map_or(Ok(10), |v| {
            v.parse().map_err(|_| {
                CmdError::coded(9, format!("--top must be a non-negative integer, got '{v}'"))
            })
        })?;

    let text = std::fs::read_to_string(path)
        .map_err(|e| CmdError::coded(2, format!("cannot read {path}: {e}")))?;
    let log = xar_obs::events::parse_jsonl(&text)
        .map_err(|e| CmdError::coded(2, format!("{path}: {e}")))?;
    if log.events.is_empty() {
        return Err(CmdError::coded(3, format!("{path}: no events recorded")));
    }

    println!(
        "{path}: {} events kept of {} emitted ({} dropped)",
        log.events.len(),
        log.emitted,
        log.dropped,
    );
    let fmt_hist = |hist: &[(String, u64)]| {
        hist.iter().map(|(k, n)| format!("{k} {n}")).collect::<Vec<_>>().join("   ")
    };
    println!("outcomes       : {}", fmt_hist(&log.outcome_histogram()));
    let rejections: Vec<(String, u64)> = log
        .reason_histogram()
        .into_iter()
        .filter(|(r, _)| r != Reason::Served.code())
        .collect();
    if !rejections.is_empty() {
        println!("rejections     : {}", fmt_hist(&rejections));
    }

    let mut matched: Vec<&xar_obs::events::ParsedEvent> = log
        .events
        .iter()
        .filter(|e| outcome.as_deref().is_none_or(|o| e.outcome == o))
        .filter(|e| reason.as_deref().is_none_or(|r| e.reason == r))
        .filter(|e| slower_than_ns.is_none_or(|ns| e.search_ns + e.book_ns > ns))
        .filter(|e| request.is_none_or(|id| e.request_id == id))
        .collect();
    if matched.is_empty() {
        return Err(CmdError::coded(3, format!("{path}: no events match the filters")));
    }
    matched.sort_by_key(|e| std::cmp::Reverse(e.search_ns + e.book_ns));
    let shown = if top == 0 { matched.len() } else { top.min(matched.len()) };
    println!("matched        : {} event(s), showing {shown} (slowest first)", matched.len());
    for e in matched.iter().take(shown) {
        println!("  {}", event_line(e));
    }
    Ok(())
}

/// `xar profile`: run an in-process simulation with the flight recorder
/// keeping every trace, fold the recorded span trees into a
/// hierarchical self/total-time profile, and write a flamegraph
/// artifact (collapsed stacks or speedscope JSON). The written file is
/// re-parsed with the in-repo reader and its total self-time compared
/// against the in-memory profile before success is reported — CI greps
/// the `validated` line.
fn profile_cmd(flags: &Flags) -> Result<(), CmdError> {
    let out = flags.require("out")?.to_string();
    let format = flags.get_opt("format").unwrap_or("collapsed").to_string();
    if format != "collapsed" && format != "speedscope" {
        return Err(CmdError::general(format!(
            "unknown --format '{format}' (expected 'collapsed' or 'speedscope')"
        )));
    }
    let rows: usize = flags.get("rows", 24)?;
    let cols: usize = flags.get("cols", 24)?;
    let seed: u64 = flags.get("seed", 0x9F0F)?;
    let trips_n: usize = flags.get("trips", 2_000)?;
    let top: usize = flags.get("top", 10)?;
    let alloc = flags.switch("alloc");

    // Keep every trace: the profile wants the whole run, not the
    // tail-sampled slice the flight recorder defaults to.
    let rec = xar_obs::trace::recorder();
    rec.configure(TraceConfig::keep_all());
    rec.set_enabled(true);
    if alloc {
        xar_obs::profile::reset_alloc_profile();
        xar_obs::profile::set_alloc_profiling(true);
    }

    eprintln!("profile city: {rows}x{cols} (seed {seed}), {trips_n} trips");
    let graph = Arc::new(CityConfig::manhattan(rows, cols, seed).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: rows * cols / 2, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
    ));
    let trips =
        generate_trips(&graph, &TripGenConfig { count: trips_n, seed, ..Default::default() });
    let mut backend =
        XarBackend::new(XarEngine::new(Arc::clone(&region), EngineConfig::default()));
    let report = run_simulation(&mut backend, &trips, &SimConfig::default());

    if alloc {
        xar_obs::profile::set_alloc_profiling(false);
    }
    rec.set_enabled(false);
    let profile = xar_obs::profile::Profile::from_snapshot(&rec.snapshot());
    if profile.spans == 0 {
        return Err(CmdError::general("the run recorded no spans — nothing to profile"));
    }
    println!("simulated      : {} trips ({} booked, {} created)", trips.len(), report.booked, report.created);

    let doc = if format == "collapsed" {
        profile.to_collapsed()
    } else {
        profile.to_speedscope()
    };
    std::fs::write(&out, &doc).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "profile        : {out} ({format}, {} traces, {} spans, {:.1} ms total)",
        profile.traces,
        profile.spans,
        profile.total_ns() as f64 / 1e6,
    );

    // Self-validation: what we just wrote must round-trip through the
    // in-repo parser and reconstruct the same total self-time.
    let entries = if format == "collapsed" {
        xar_obs::profile::parse_collapsed(&doc)
    } else {
        xar_obs::profile::parse_speedscope(&doc)
    }
    .map_err(|e| CmdError::general(format!("{out}: written artifact does not re-parse: {e}")))?;
    let reparsed = xar_obs::profile::Profile::from_entries(&entries);
    if reparsed.total_ns() != profile.total_ns() {
        return Err(CmdError::general(format!(
            "{out}: re-parsed total {} ns != profiled total {} ns",
            reparsed.total_ns(),
            profile.total_ns(),
        )));
    }
    println!(
        "validated      : round-trip ok ({} stacks, {} ns total self-time)",
        reparsed.collapsed_entries().len(),
        reparsed.total_ns(),
    );

    println!("\n{:<28} {:>12} {:>10}", "span (self-time)", "self ms", "count");
    for (name, self_ns, count) in profile.top_self(top) {
        println!("{:<28} {:>12.2} {:>10}", name, self_ns as f64 / 1e6, count);
    }

    if alloc {
        let by_span = xar_obs::profile::alloc_profile();
        println!("\n{:<28} {:>14} {:>12}", "span (allocations)", "bytes", "allocs");
        for a in by_span.iter().take(top) {
            println!("{:<28} {:>14} {:>12}", a.name, a.bytes, a.allocs);
        }
        if by_span.is_empty() {
            println!("(no allocations attributed — allocator hook saw no traffic)");
        }
    }
    Ok(())
}

/// One HTTP GET over a plain `TcpStream` (the dashboard needs no HTTP
/// client). Returns the response body; errors on any non-200 status.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5))).ok();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("cannot write to {addr}: {e}"))?;
    let mut buf = String::new();
    stream
        .read_to_string(&mut buf)
        .map_err(|e| format!("cannot read from {addr}: {e}"))?;
    let (head, body) = buf
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}{path}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("{addr}{path}: {status}"));
    }
    Ok(body.to_string())
}

/// Render one `xar top` dashboard frame from a parsed `/metrics`
/// scrape: request counts by outcome, the rolling-window table,
/// per-cluster ride occupancy, and SLO alert state.
fn render_top_frame(p: &xar_obs::promtext::PromText) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();

    // Request outcomes (cumulative counters from the simulation).
    let total = p.with_name("sim_requests_total").next().map(|s| s.value).unwrap_or(0.0);
    let mut outcomes: Vec<(String, f64)> = p
        .with_name("sim_requests")
        .filter_map(|s| s.label("outcome").map(|o| (o.to_string(), s.value)))
        .collect();
    outcomes.sort_by(|a, b| a.0.cmp(&b.0));
    let _ = write!(out, "requests: {total:.0}");
    for (o, v) in &outcomes {
        let _ = write!(out, "   {o} {v:.0}");
    }
    out.push('\n');

    // Rejection-reason breakdown (the wide-event taxonomy, counted by
    // the dispatch pipeline into sim_reject_reason{reason=...}).
    let mut rejects: Vec<(String, f64)> = p
        .with_name("sim_reject_reason")
        .filter_map(|s| s.label("reason").map(|r| (r.to_string(), s.value)))
        .filter(|&(_, v)| v > 0.0)
        .collect();
    rejects.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    if !rejects.is_empty() {
        out.push_str("rejections:");
        for (r, v) in &rejects {
            let _ = write!(out, "  {r}={v:.0}");
        }
        out.push('\n');
    }

    // Rolling windows: group xar_rolling samples by (metric, window).
    let mut metrics: Vec<String> = Vec::new();
    let mut table: HashMap<(String, String), HashMap<String, f64>> = HashMap::new();
    for s in p.with_name("xar_rolling") {
        let (Some(m), Some(w), Some(st)) = (s.label("metric"), s.label("window"), s.label("stat"))
        else {
            continue;
        };
        if !metrics.iter().any(|x| x == m) {
            metrics.push(m.to_string());
        }
        table
            .entry((m.to_string(), w.to_string()))
            .or_default()
            .insert(st.to_string(), s.value);
    }
    metrics.sort();
    if !metrics.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<46} {:>6} {:>12} {:>12} {:>12}",
            "rolling series", "window", "rate/s", "p50", "p99"
        );
        for m in &metrics {
            // Latency histograms record nanoseconds; show them in µs.
            let (scale, unit) = if m.contains("_ns") { (1e3, " µs") } else { (1.0, "") };
            let mut first = true;
            for &(w, _) in xar_obs::serve::ROLLING_WINDOWS {
                let Some(stats) = table.get(&(m.clone(), w.to_string())) else { continue };
                let fmt = |k: &str| {
                    stats
                        .get(k)
                        .map(|v| format!("{:.1}{unit}", v / scale))
                        .unwrap_or_else(|| "-".into())
                };
                let rate = stats
                    .get("rate_per_s")
                    .map(|v| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".into());
                let name_col = if first { m.as_str() } else { "" };
                first = false;
                let _ = writeln!(
                    out,
                    "{:<46} {:>6} {:>12} {:>12} {:>12}",
                    name_col,
                    w,
                    rate,
                    fmt("p50"),
                    fmt("p99")
                );
            }
        }
    }

    // Snapshot-publication plane: write-path cost of the lock-free
    // search path, plus the epoch-reclamation backlog.
    let metric = |n: &str| {
        p.with_name(n)
            .find(|s| s.labels.is_empty())
            .map(|s| s.value)
    };
    if let Some(publishes) = metric("engine_snapshot_publishes") {
        let freed = metric("engine_snapshot_retired_freed").unwrap_or(0.0);
        let backlog = metric("engine_snapshot_backlog").unwrap_or(0.0);
        let p99 = p
            .find("engine_snapshot_publish_ns", &[("quantile", "0.99")])
            .map(|s| s.value)
            .unwrap_or(0.0);
        let _ = writeln!(
            out,
            "\nsnapshots: published {publishes:.0}   freed {freed:.0}   backlog {backlog:.0}   publish p99 {:.1} µs",
            p99 / 1e3,
        );
    }

    // Tail exemplars: trace ids of the slowest recent samples, straight
    // from the OpenMetrics `# {trace_id=...}` annotations.
    let mut exemplars: Vec<(String, String, f64)> = p
        .samples
        .iter()
        .filter_map(|s| {
            let e = s.exemplar.as_ref()?;
            let trace = e.trace_id()?.to_string();
            let mut series = s.name.clone();
            if let Some(tier) = s.label("tier") {
                series.push_str(&format!("{{tier={tier}}}"));
            }
            Some((series, trace, e.value))
        })
        .collect();
    exemplars.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    exemplars.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
    if !exemplars.is_empty() {
        out.push_str("\nslow exemplars:\n");
        for (series, trace, value) in exemplars.iter().take(6) {
            let _ = writeln!(out, "  {series:<40} trace {trace:<20} {:.1} µs", value / 1e3);
        }
    }

    // Per-cluster live-ride occupancy.
    let mut occ: Vec<(String, f64)> = p
        .with_name("engine_cluster_rides")
        .filter_map(|s| s.label("cluster").map(|c| (c.to_string(), s.value)))
        .collect();
    occ.sort_by(|a, b| a.0.cmp(&b.0));
    if !occ.is_empty() {
        out.push_str("\nrides/cluster:");
        for (c, v) in &occ {
            let _ = write!(out, "  {c}={v:.0}");
        }
        out.push('\n');
    }

    // SLO alert state with burn rates.
    let mut alerts = String::new();
    for s in p.with_name("xar_alert_firing") {
        let Some(name) = s.label("name") else { continue };
        let burn = |fam: &str| {
            p.find(fam, &[("name", name)]).map(|b| b.value).unwrap_or(0.0)
        };
        let state = if s.value >= 1.0 { "FIRING" } else { "ok" };
        let _ = writeln!(
            alerts,
            "  {name:<28} {state:<8} fast burn {:.2}   slow burn {:.2}",
            burn("xar_alert_fast_burn"),
            burn("xar_alert_slow_burn"),
        );
    }
    if !alerts.is_empty() {
        out.push_str("\nalerts:\n");
        out.push_str(&alerts);
    }
    out
}

/// `xar top`: poll a live ops plane's `/metrics` and render a terminal
/// dashboard every `--interval-ms`.
fn top_cmd(flags: &Flags) -> Result<(), CmdError> {
    let addr = flags.require("connect")?;
    let addr = addr.strip_prefix("http://").unwrap_or(addr).trim_end_matches('/').to_string();
    let interval_ms: u64 = flags.get("interval-ms", 1_000)?;
    let frames: u64 = flags.get("frames", 0)?;
    let plain = flags.switch("plain");
    let mut shown = 0u64;
    loop {
        let body = http_get(&addr, "/metrics").map_err(CmdError::general)?;
        let parsed = xar_obs::promtext::parse(&body)
            .map_err(|e| CmdError::general(format!("{addr}/metrics does not parse: {e}")))?;
        let frame = render_top_frame(&parsed);
        if !plain {
            // ANSI clear-screen + home, so the frame repaints in place.
            print!("\x1b[2J\x1b[H");
        }
        println!("xar top — {addr}  (refresh {interval_ms} ms)\n");
        print!("{frame}");
        std::io::stdout().flush().ok();
        shown += 1;
        if frames != 0 && shown >= frames {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result: Result<(), CmdError> = match cmd.as_str() {
        "build-region" => build_region(&flags).map_err(CmdError::from),
        "inspect" => inspect(&flags).map_err(CmdError::from),
        "simulate" => simulate(&flags),
        "bench" => bench(&flags),
        "logs" => logs_cmd(&flags),
        "trace" => trace_cmd(&flags),
        "top" => top_cmd(&flags),
        "profile" => profile_cmd(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(CmdError::general(format!("unknown command '{other}'\n{}", usage()))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.msg);
            ExitCode::from(e.code.max(1))
        }
    }
}
