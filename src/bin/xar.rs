//! `xar` — command-line front-end to the Xhare-a-Ride system.
//!
//! ```text
//! xar build-region [--rows N] [--cols N] [--seed S] [--delta M]
//!                  [--clusters C] --out region.xarr
//!     Generate a synthetic city, run the pre-processing pipeline and
//!     persist the region index.
//!
//! xar inspect --region region.xarr
//!     Print the discretization summary of a persisted region.
//!
//! xar simulate --region region.xarr [--trips N] [--seed S] [--k N]
//!              [--walk M] [--window S] [--detour M] [--json FILE]
//!              [--metrics-out FILE] [--trace-out FILE]
//!              [--trace-slow-ms F] [--trace-sample P] [--trace-buffer N]
//!              [--baseline tshare]
//!     Run the paper's §X.A.2 ride-sharing simulation over a synthetic
//!     taxi day and report outcome + latency statistics. `--json` dumps
//!     the full report (counters, percentiles, metrics) as JSON;
//!     `--metrics-out` dumps just the metric-registry snapshot
//!     (schema in EXPERIMENTS.md). `--trace-out` enables the flight
//!     recorder and writes Chrome trace-event JSON (Perfetto-loadable;
//!     tail sampling keeps every request slower than `--trace-slow-ms`,
//!     default 1.0, plus a `--trace-sample` fraction of the rest,
//!     default 0.01). `--baseline tshare` replays the same trips
//!     through the T-Share baseline so the trace and metrics cover
//!     both systems.
//!
//! xar trace --in trace.json [--top N] [--check]
//!     Print the N slowest request timelines (per-span self-time,
//!     lifecycle milestones) from a `--trace-out` file — or, with
//!     `--check`, validate the file (valid JSON, at least one complete
//!     request timeline, drop counter present) and exit non-zero when
//!     it is malformed.
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use xar_obs::chrome::{export_chrome, parse_chrome, Attrs, Timeline};
use xar_obs::json::JsonValue;
use xar_obs::TraceConfig;
use xhare_a_ride::core::{EngineConfig, XarEngine};
use xhare_a_ride::discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xhare_a_ride::roadnet::{sample_pois, CityConfig, PoiConfig};
use xhare_a_ride::tshare::{TShareConfig, TShareEngine};
use xhare_a_ride::workload::{
    generate_trips, percentile_ns, run_simulation, SimConfig, TShareBackend, TripGenConfig,
    XarBackend,
};

/// Flags that take no value (presence alone means `true`).
const SWITCHES: &[&str] = &["check"];

/// Minimal `--key value` flag parser (with a fixed set of valueless
/// switches).
struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            if SWITCHES.contains(&key) {
                values.insert(key.to_string(), "true".to_string());
                continue;
            }
            let Some(v) = it.next() else {
                return Err(format!("flag --{key} is missing a value"));
            };
            values.insert(key.to_string(), v.clone());
        }
        Ok(Self { values })
    }

    fn switch(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    fn get_opt(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get_opt(key).ok_or_else(|| format!("missing required flag --{key}"))
    }
}

fn usage() -> &'static str {
    "usage:\n  xar build-region [--rows N] [--cols N] [--seed S] [--delta M | --clusters C] --out FILE\n  xar inspect --region FILE\n  xar simulate --region FILE [--trips N] [--seed S] [--k N] [--walk M] [--window S] [--detour M] [--json FILE] [--metrics-out FILE] [--trace-out FILE] [--trace-slow-ms F] [--trace-sample P] [--trace-buffer N] [--baseline tshare]\n  xar trace --in FILE [--top N] [--check]"
}

fn build_region(flags: &Flags) -> Result<(), String> {
    let rows: usize = flags.get("rows", 60)?;
    let cols: usize = flags.get("cols", 60)?;
    let seed: u64 = flags.get("seed", 1)?;
    let out = flags.require("out")?;
    let goal = if let Some(c) = flags.get_opt("clusters") {
        ClusterGoal::FixedCount(c.parse().map_err(|_| "invalid --clusters".to_string())?)
    } else {
        ClusterGoal::Delta(flags.get("delta", 250.0)?)
    };

    eprintln!("generating {rows}x{cols} city (seed {seed})...");
    let graph = Arc::new(CityConfig::manhattan(rows, cols, seed).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: rows * cols / 2, ..Default::default() });
    eprintln!(
        "pre-processing: {} nodes, {} POIs -> landmarks -> clusters...",
        graph.node_count(),
        pois.len()
    );
    let region =
        RegionIndex::build(graph, &pois, RegionConfig { cluster_goal: goal, ..Default::default() });
    region.save(out).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "region saved to {out}: {} landmarks, {} clusters, epsilon {:.0} m, tables {:.1} MiB",
        region.landmark_count(),
        region.cluster_count(),
        region.epsilon_m(),
        region.heap_bytes() as f64 / (1024.0 * 1024.0),
    );
    Ok(())
}

fn inspect(flags: &Flags) -> Result<(), String> {
    let path = flags.require("region")?;
    let region = RegionIndex::load(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let g = region.graph();
    println!("region file    : {path}");
    println!("road network   : {} way-points, {} segments", g.node_count(), g.edge_count());
    println!("grid           : {} x {} cells of {:.0} m", region.grid().cols(), region.grid().rows(), region.grid().cell_m());
    println!("landmarks      : {}", region.landmark_count());
    println!("clusters       : {}", region.cluster_count());
    println!("epsilon        : {:.0} m (worst intra-cluster driving distance)", region.epsilon_m());
    println!("tables in RAM  : {:.1} MiB", region.heap_bytes() as f64 / (1024.0 * 1024.0));
    let sizes: Vec<usize> = (0..region.cluster_count() as u32)
        .map(|c| region.cluster_members(xhare_a_ride::discretize::ClusterId(c)).len())
        .collect();
    let max = sizes.iter().max().copied().unwrap_or(0);
    let avg = sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64;
    println!("cluster sizes  : avg {avg:.1} landmarks, max {max}");
    Ok(())
}

fn simulate(flags: &Flags) -> Result<(), String> {
    let path = flags.require("region")?;
    let trips_n: usize = flags.get("trips", 10_000)?;
    let seed: u64 = flags.get("seed", 0x7A11)?;
    let k: usize = flags.get("k", usize::MAX)?;
    let walk: f64 = flags.get("walk", 800.0)?;
    let window: f64 = flags.get("window", 1_200.0)?;
    let detour: f64 = flags.get("detour", 4_000.0)?;

    let trace_out = flags.get_opt("trace-out").map(str::to_string);
    if trace_out.is_some() {
        let slow_ms: f64 = flags.get("trace-slow-ms", 1.0)?;
        let sample: f64 = flags.get("trace-sample", 0.01)?;
        let buffer: usize = flags.get("trace-buffer", 262_144)?;
        if !(0.0..=1.0).contains(&sample) {
            return Err("--trace-sample must be a probability in [0, 1]".into());
        }
        let rec = xar_obs::trace::recorder();
        rec.configure(TraceConfig {
            slow_threshold_ns: (slow_ms * 1e6).max(0.0) as u64,
            sample_per_mille: (sample * 1000.0).round() as u32,
            capacity_events: buffer,
            ..TraceConfig::default()
        });
        rec.set_enabled(true);
    }

    let region =
        Arc::new(RegionIndex::load(path).map_err(|e| format!("cannot read {path}: {e}"))?);
    let trips = generate_trips(
        region.graph(),
        &TripGenConfig { count: trips_n, seed, ..Default::default() },
    );
    eprintln!("simulating {} trips on {} clusters...", trips.len(), region.cluster_count());
    let mut backend = XarBackend::new(XarEngine::new(Arc::clone(&region), EngineConfig::default()));
    let cfg = SimConfig { walk_limit_m: walk, window_s: window, detour_limit_m: detour, k, ..Default::default() };
    let report = run_simulation(&mut backend, &trips, &cfg);

    println!("trips          : {}", trips.len());
    println!("booked         : {} ({:.1}% share rate)", report.booked, report.share_rate() * 100.0);
    println!("created        : {}", report.created);
    println!("unservable     : {}", report.unservable);
    println!(
        "search latency : avg {:.1} µs, p95 {:.1} µs, p99 {:.1} µs",
        report.mean_search_ms() * 1e3,
        percentile_ns(&report.search_ns, 95.0) / 1e3,
        percentile_ns(&report.search_ns, 99.0) / 1e3,
    );
    println!(
        "create latency : p50 {:.1} µs   book latency: p50 {:.1} µs",
        percentile_ns(&report.create_ns, 50.0) / 1e3,
        percentile_ns(&report.book_ns, 50.0) / 1e3,
    );
    let (_, _, _, _, sps) = backend.engine.stats().snapshot();
    println!("shortest paths : {sps} (never during search)");
    println!(
        "runtime memory : {:.1} MiB",
        backend.engine.heap_bytes() as f64 / (1024.0 * 1024.0)
    );
    for line in report.phase_summary() {
        println!("phase          : {line}");
    }
    if let Some(json) = flags.get_opt("json") {
        std::fs::write(json, report.to_json())
            .map_err(|e| format!("cannot write {json}: {e}"))?;
        println!("raw report     : {json}");
    }
    if let Some(path) = flags.get_opt("metrics-out") {
        let registry = report.registry.as_ref().expect("simulation attaches a registry");
        std::fs::write(path, registry.snapshot_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("metrics        : {path}");
    }

    if let Some(baseline) = flags.get_opt("baseline") {
        if baseline != "tshare" {
            return Err(format!("unknown baseline '{baseline}' (only 'tshare' is supported)"));
        }
        eprintln!("replaying {} trips through the T-Share baseline...", trips.len());
        let mut ts = TShareBackend::new(TShareEngine::new(
            Arc::clone(region.graph()),
            TShareConfig::default(),
        ));
        let tr = run_simulation(&mut ts, &trips, &cfg);
        println!(
            "baseline       : tshare booked {} ({:.1}% share rate), search p95 {:.1} µs",
            tr.booked,
            tr.share_rate() * 100.0,
            percentile_ns(&tr.search_ns, 95.0) / 1e3,
        );
    }

    if let Some(path) = trace_out {
        let rec = xar_obs::trace::recorder();
        rec.set_enabled(false);
        std::fs::write(&path, export_chrome(&rec.snapshot()))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let st = rec.stats();
        println!(
            "trace          : {path} ({} of {} traces kept, {} sampled out, {} events dropped)",
            st.kept_traces, st.started_traces, st.sampled_out_traces, st.dropped_events,
        );
    }
    Ok(())
}

/// Render one attribute value compactly (`3`, `2.5`, `booked`, ...).
fn attr_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Number(n) => format!("{n}"),
        JsonValue::String(s) => s.clone(),
        JsonValue::Array(_) | JsonValue::Object(_) => "...".into(),
    }
}

fn attr_line(attrs: &Attrs) -> String {
    let mut out = String::new();
    for (k, v) in attrs {
        out.push_str(&format!(" {k}={}", attr_value(v)));
    }
    out
}

/// Recursive span printer: duration, self-time, attrs, then nested
/// spans and the instants that fired while this span was innermost.
fn print_span(node: &xar_obs::chrome::SpanNode, root_start_us: f64, depth: usize) {
    let indent = "  ".repeat(depth);
    println!(
        "  {indent}{:<24} +{:9.1} µs  dur {:9.1} µs  self {:9.1} µs{}",
        node.name,
        node.start_us - root_start_us,
        node.dur_us,
        node.self_us,
        attr_line(&node.attrs),
    );
    for (name, ts_us, attrs) in &node.instants {
        println!(
            "  {indent}  * {:<20} +{:9.1} µs{}",
            name,
            ts_us - root_start_us,
            attr_line(attrs),
        );
    }
    for child in &node.children {
        print_span(child, root_start_us, depth + 1);
    }
}

/// `xar trace`: inspect (or, with `--check`, validate) a Chrome trace
/// file written by `xar simulate --trace-out`.
fn trace_cmd(flags: &Flags) -> Result<(), String> {
    let path = flags.require("in")?;
    let top: usize = flags.get("top", 10)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = parse_chrome(&text).map_err(|e| format!("{path}: {e}"))?;
    let timelines = Timeline::build(&parsed);
    let requests: Vec<&Timeline> =
        timelines.iter().filter(|t| t.root.name == "request").collect();

    if flags.switch("check") {
        // The in-tree CI validator: a trace file is healthy when it is
        // valid Chrome JSON (parse_chrome above), carries at least one
        // complete request timeline, and self-describes its drop
        // accounting.
        if requests.is_empty() {
            return Err(format!("{path}: no complete 'request' timeline"));
        }
        if !parsed.has_drop_counter {
            return Err(format!("{path}: missing 'xar' drop-counter block"));
        }
        println!(
            "ok: {} events, {} timelines ({} requests), {}/{} traces kept, {} events dropped",
            parsed.events.len(),
            timelines.len(),
            requests.len(),
            parsed.kept_traces,
            parsed.started_traces,
            parsed.dropped_events,
        );
        return Ok(());
    }

    println!(
        "{path}: {} events, {} traces kept of {} started ({} sampled out), {} events dropped",
        parsed.events.len(),
        parsed.kept_traces,
        parsed.started_traces,
        parsed.sampled_out_traces,
        parsed.dropped_events,
    );
    let mut slowest = requests;
    slowest.sort_by(|a, b| {
        b.root.dur_us.partial_cmp(&a.root.dur_us).unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("{} request timelines; {} slowest:", slowest.len(), top.min(slowest.len()));
    for (i, t) in slowest.iter().take(top).enumerate() {
        println!(
            "\n#{:<2} trace {}  {:.1} µs  {} spans{}",
            i + 1,
            t.trace,
            t.root.dur_us,
            t.span_count(),
            attr_line(&t.root.attrs),
        );
        print_span(&t.root, t.root.start_us, 0);
        for (name, ts_us, attrs) in &t.lifecycle {
            println!(
                "    ~ {:<20} +{:9.1} µs{}",
                name,
                ts_us - t.root.start_us,
                attr_line(attrs),
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "build-region" => build_region(&flags),
        "inspect" => inspect(&flags),
        "simulate" => simulate(&flags),
        "trace" => trace_cmd(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
