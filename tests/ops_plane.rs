//! End-to-end test of the live operational plane: run a real
//! simulation with the embedded HTTP server attached, scrape
//! `/metrics` over a raw `TcpStream`, and validate the exposition with
//! the in-repo Prometheus-text parser (ISSUE 4 acceptance: labeled
//! series and rolling percentiles round-trip through our own reader).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use xar_obs::serve::{serve, OpsPlane};
use xar_obs::slo::{SloEngine, SloRule};
use xar_obs::window::{WindowConfig, WindowStore};
use xhare_a_ride::core::{EngineConfig, XarEngine};
use xhare_a_ride::discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xhare_a_ride::roadnet::{sample_pois, CityConfig, PoiConfig};
use xhare_a_ride::workload::{
    generate_trips, run_simulation, RideBackend as _, SimConfig, TripGenConfig, XarBackend,
};

/// Minimal HTTP GET; returns (status_code, body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect to ops server");
    write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

#[test]
fn ops_plane_serves_labeled_metrics_rolling_windows_and_alerts() {
    // A small but real city so every label family gets traffic.
    let graph = Arc::new(CityConfig::manhattan(16, 16, 7).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 128, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::FixedCount(12), ..Default::default() },
    ));
    let mut backend = XarBackend::new(XarEngine::new(region, EngineConfig::default()));
    let registry = backend.registry().expect("XAR backend keeps a registry");

    // Huge tick so the server's background ticker stays idle and the
    // test drives window time deterministically via plane.tick().
    let plane = OpsPlane::new(
        registry,
        Arc::new(WindowStore::new(WindowConfig { tick_ms: 600_000, capacity: 16 })),
        Arc::new(SloEngine::new(vec![SloRule::parse(
            "name=search-lat hist=engine.search_ns max_ms=500 target=0.9 fast=1 slow=1",
        )
        .unwrap()])),
    );
    let server = serve("127.0.0.1:0", plane.clone()).expect("bind ops server");
    let addr = server.local_addr().to_string();

    let trips = generate_trips(&graph, &TripGenConfig { count: 400, seed: 11, ..Default::default() });
    let report = run_simulation(&mut backend, &trips, &SimConfig::default());
    assert!(report.booked + report.created > 0, "simulation produced no rides");
    plane.tick();

    // /metrics parses with the in-repo reader and carries the labeled
    // families plus rolling-window gauges.
    let (status, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    let parsed = xar_obs::promtext::parse(&body).expect("own exposition must parse");

    let tiered: Vec<_> = parsed
        .with_name("engine_search_ns")
        .filter(|s| s.label("tier").is_some())
        .collect();
    assert!(!tiered.is_empty(), "no tier-labeled search series:\n{body}");
    assert!(
        parsed
            .with_name("engine_book_ns_count")
            .any(|s| s.label("cluster").is_some()),
        "no cluster-labeled booking series:\n{body}"
    );
    assert!(
        parsed.find("sim_requests", &[("outcome", "booked")]).is_some(),
        "no outcome-labeled request counter:\n{body}"
    );

    // Rolling percentiles: the tick above folded the whole run into the
    // newest window, so p99 over any window must be positive and the
    // windows must carry the same sample mass (only one tick ever ran).
    let p99_1s = parsed
        .find("xar_rolling", &[("metric", "engine.search_ns"), ("window", "1s"), ("stat", "p99")])
        .expect("rolling p99 sample");
    assert!(p99_1s.value > 0.0, "rolling p99 empty");
    let p50_1s = parsed
        .find("xar_rolling", &[("metric", "engine.search_ns"), ("window", "1s"), ("stat", "p50")])
        .unwrap();
    assert!(p50_1s.value <= p99_1s.value, "p50 {} > p99 {}", p50_1s.value, p99_1s.value);
    for w in ["10s", "60s"] {
        let p99 = parsed
            .find("xar_rolling", &[("metric", "engine.search_ns"), ("window", w), ("stat", "p99")])
            .unwrap();
        assert_eq!(p99.value, p99_1s.value, "window {w} disagrees after a single tick");
    }
    // Labeled series get their own rolling windows too.
    let tier_metric = format!("engine.search_ns{{tier=\"{}\"}}",
        tiered[0].label("tier").unwrap());
    assert!(
        parsed
            .with_name("xar_rolling")
            .any(|s| s.label("metric") == Some(tier_metric.as_str())),
        "no rolling window for labeled series {tier_metric}:\n{body}"
    );

    // /health is 200 while the (generous) SLO is quiet; /alerts is a
    // JSON array naming the rule; /snapshot is the JSON dump.
    let (status, health) = http_get(&addr, "/health");
    assert_eq!(status, 200, "{health}");
    let (status, alerts) = http_get(&addr, "/alerts");
    assert_eq!(status, 200);
    let alerts_doc = xar_obs::json::parse(&alerts).expect("alerts JSON parses");
    let arr = alerts_doc.as_array().expect("alerts is an array");
    assert_eq!(arr.len(), 1);
    assert_eq!(arr[0].get("name").and_then(|v| v.as_str()), Some("search-lat"));
    let (status, snap) = http_get(&addr, "/snapshot");
    assert_eq!(status, 200);
    assert!(xar_obs::json::parse(&snap).is_ok(), "snapshot JSON parses");

    let (status, _) = http_get(&addr, "/nope");
    assert_eq!(status, 404);

    drop(server); // Drop shuts the listener down; must not hang.
}

#[test]
fn health_turns_503_when_an_impossible_slo_fires() {
    let registry = Arc::new(xar_obs::Registry::new());
    let plane = OpsPlane::new(
        Arc::clone(&registry),
        Arc::new(WindowStore::new(WindowConfig { tick_ms: 600_000, capacity: 8 })),
        // 1 ns budget at five nines: any recorded sample breaches it.
        Arc::new(SloEngine::new(vec![SloRule::parse(
            "name=impossible hist=lat max_ns=1 target=0.99999 fast=1 slow=1 burn=0.5",
        )
        .unwrap()])),
    );
    let server = serve("127.0.0.1:0", plane.clone()).expect("bind");
    let addr = server.local_addr().to_string();

    registry.histogram("lat").record(1_000_000);
    plane.tick();

    let (status, body) = http_get(&addr, "/health");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("impossible"), "{body}");
    let (_, metrics) = http_get(&addr, "/metrics");
    let parsed = xar_obs::promtext::parse(&metrics).unwrap();
    assert_eq!(
        parsed.find("xar_alert_firing", &[("name", "impossible")]).map(|s| s.value),
        Some(1.0)
    );
}
