//! Pin the `xar` binary's exit-code contract (ISSUE 4 satellite): CI
//! and operators branch on these, so a renumbering is a breaking
//! change. 0 = ok, 1 = generic error, 2 = unreadable / invalid trace
//! JSON, 3 = trace with no complete request timeline, 4 = trace
//! missing the drop counter, 7 = `bench` capacity/scaling/`--against`
//! gate, 8 = `--slo-fail` with a fired SLO, 9 = invalid `--threads` /
//! `--shards` / `--dispatch` / `--compress-day-s` / `--tolerance` /
//! `--publish-coalesce-us` / `bench --write` workload /
//! `xar logs` filter value, 10 = `--max-backlog` snapshot
//! retire-backlog gate. `xar logs` reuses 2 (unreadable / invalid
//! events file) and 3 (no events, or none matching the filters). The
//! full table lives in README.md § Exit codes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn xar(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xar")).args(args).output().expect("spawn xar")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn write(path: &Path, text: &str) {
    std::fs::write(path, text).expect("write fixture");
}

/// A per-test scratch directory under the target dir.
fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

#[test]
fn trace_check_exit_codes_are_distinct_per_failure_class() {
    let dir = scratch("trace_codes");

    // 2: file unreadable.
    let out = xar(&["trace", "--check", "--in", dir.join("missing.json").to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{out:?}");

    // 2: not valid Chrome JSON.
    let bad = dir.join("bad.json");
    write(&bad, "this is not json");
    let out = xar(&["trace", "--check", "--in", bad.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{out:?}");

    // 3: valid JSON, drop counter present, but no request timeline.
    let empty = dir.join("empty.json");
    write(&empty, r#"{"traceEvents":[],"xar":{"dropped_events":0}}"#);
    let out = xar(&["trace", "--check", "--in", empty.to_str().unwrap()]);
    assert_eq!(code(&out), 3, "{out:?}");

    // 4: a complete request timeline but no "xar" drop-counter block.
    let nodrop = dir.join("nodrop.json");
    write(
        &nodrop,
        r#"{"traceEvents":[
            {"name":"request","ph":"B","ts":0,"pid":1,"tid":1,"args":{"trace":1,"span":1}},
            {"name":"request","ph":"E","ts":100,"pid":1,"tid":1}
        ]}"#,
    );
    let out = xar(&["trace", "--check", "--in", nodrop.to_str().unwrap()]);
    assert_eq!(code(&out), 4, "{out:?}");

    // 1: generic CLI error (missing required flag).
    let out = xar(&["trace", "--check"]);
    assert_eq!(code(&out), 1, "{out:?}");
}

#[test]
fn invalid_threads_or_shards_exit_9_with_a_clear_message() {
    // Concurrency flags are validated before the region file is even
    // opened, so none of these need a fixture. Each failure names the
    // offending flag and the accepted range.
    for args in [
        ["simulate", "--threads", "0"],
        ["simulate", "--threads", "abc"],
        ["simulate", "--threads", "-4"],
        ["simulate", "--shards", "0"],
        ["simulate", "--shards", "999"],
        ["bench", "--threads", "1,nope"],
        ["bench", "--shards", "zero"],
        ["simulate", "--dispatch", "nonsense"],
        ["simulate", "--dispatch", "batch:"],
        ["simulate", "--dispatch", "batch:-50"],
        ["simulate", "--dispatch", "batch:1.5"],
        ["simulate", "--compress-day-s", "0"],
        ["simulate", "--compress-day-s", "-10"],
    ] {
        let out = xar(&args);
        assert_eq!(code(&out), 9, "{args:?} -> {out:?}");
        let msg = String::from_utf8_lossy(&out.stderr);
        assert!(msg.contains(args[1].trim_start_matches('-')), "{args:?}: {msg}");
    }

    // A valid value on the same flags does not trip the validator:
    // `bench` with one tiny point exits 0.
    let out = xar(&[
        "bench", "--rows", "10", "--cols", "10", "--trips", "60", "--threads", "2",
        "--shards", "2",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
}

#[test]
fn bench_scaling_gate_failure_exits_7() {
    // An unmeetable --min-scaling (1000x from 1 to 2 threads) must trip
    // the gate; the capacity audit and the curve still print first.
    let out = xar(&[
        "bench", "--rows", "10", "--cols", "10", "--trips", "60", "--threads", "1,2",
        "--min-scaling", "1000",
    ]);
    assert_eq!(code(&out), 7, "{out:?}");
    let msg = String::from_utf8_lossy(&out.stderr);
    assert!(msg.contains("below the 1000x gate"), "{msg}");
}

#[test]
fn simulate_slo_fail_exits_8_and_trace_check_passes_on_real_output() {
    let dir = scratch("slo_fail");
    let region = dir.join("region.xarr");
    let out = xar(&[
        "build-region", "--rows", "14", "--cols", "14", "--seed", "5", "--clusters", "10",
        "--out", region.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "build-region failed: {out:?}");

    // An unmeetable SLO (1 ns search budget, tiny error allowance, tiny
    // burn threshold) must fire and, under --slo-fail, exit 8.
    let trace = dir.join("trace.json");
    let out = xar(&[
        "simulate", "--region", region.to_str().unwrap(), "--trips", "300",
        "--trace-out", trace.to_str().unwrap(), "--trace-sample", "1.0",
        "--tick-ms", "20", "--slo-fail",
        "--slo", "name=impossible hist=sim.search_ns max_ns=1 target=0.999 fast=1 slow=1 burn=0.001",
    ]);
    assert_eq!(code(&out), 8, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("slo fired      : impossible"), "{stdout}");

    // The same run's trace file passes --check (exit 0) — the healthy
    // path for the codes pinned above.
    let out = xar(&["trace", "--check", "--in", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");

    // And the same simulation with a generous SLO exits 0.
    let out = xar(&[
        "simulate", "--region", region.to_str().unwrap(), "--trips", "300",
        "--tick-ms", "20", "--slo-fail",
        "--slo", "name=relaxed hist=sim.search_ns max_ms=60000 target=0.5 fast=1 slow=1",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
}

#[test]
fn top_renders_one_plain_frame_from_a_served_simulation() {
    let dir = scratch("top_frame");
    let region = dir.join("region.xarr");
    let out = xar(&[
        "build-region", "--rows", "14", "--cols", "14", "--seed", "9", "--clusters", "10",
        "--out", region.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "build-region failed: {out:?}");

    // Serve on an ephemeral port, lingering long enough for `xar top`
    // to scrape one frame; read the bound address off stdout.
    let mut child = Command::new(env!("CARGO_BIN_EXE_xar"))
        .args([
            "simulate", "--region", region.to_str().unwrap(), "--trips", "300",
            "--serve", "127.0.0.1:0", "--tick-ms", "50", "--linger-s", "20",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn simulate --serve");
    let addr = {
        use std::io::{BufRead, BufReader};
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let line = loop {
            match lines.next() {
                Some(Ok(l)) if l.contains("http://") => break l,
                Some(Ok(_)) => continue,
                other => panic!("no ops-plane line before stdout closed: {other:?}"),
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        line.split("http://").nth(1).expect("address").trim().to_string()
    };

    // The first window tick lands ~tick-ms after startup; retry until
    // the frame carries rolling data (bounded by the linger window).
    let mut frame = String::new();
    let mut ok = false;
    for _ in 0..40 {
        let out = xar(&["top", "--connect", &addr, "--frames", "1", "--plain"]);
        assert_eq!(code(&out), 0, "{out:?}");
        frame = String::from_utf8_lossy(&out.stdout).into_owned();
        if frame.contains("rolling series") {
            ok = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let _ = child.kill();
    let _ = child.wait();
    assert!(ok, "no rolling data ever appeared:\n{frame}");
    assert!(frame.contains("requests:"), "{frame}");
    assert!(!frame.contains('\x1b'), "--plain must not emit ANSI escapes: {frame}");
}

#[test]
fn simulate_max_backlog_gate_exits_10() {
    let dir = scratch("backlog_gate");
    let region = dir.join("region.xarr");
    let out = xar(&[
        "build-region", "--rows", "14", "--cols", "14", "--seed", "3", "--clusters", "10",
        "--out", region.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "build-region failed: {out:?}");

    // A healthy run drains its backlog to 0 by exit, so any sane gate
    // passes…
    let out = xar(&[
        "simulate", "--region", region.to_str().unwrap(), "--trips", "200",
        "--max-backlog", "64",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("backlog gate   :"), "{stdout}");

    // …and an impossible gate (-1 < the drained backlog of 0) pins the
    // exit code deterministically without needing a stuck reader.
    let out = xar(&[
        "simulate", "--region", region.to_str().unwrap(), "--trips", "200",
        "--max-backlog", "-1",
    ]);
    assert_eq!(code(&out), 10, "{out:?}");
    let msg = String::from_utf8_lossy(&out.stderr);
    assert!(msg.contains("exceeds --max-backlog"), "{msg}");

    // Unparseable gate value is a generic CLI error, not code 10.
    let out = xar(&[
        "simulate", "--region", region.to_str().unwrap(), "--max-backlog", "soon",
    ]);
    assert_eq!(code(&out), 1, "{out:?}");
}

#[test]
fn profile_writes_validated_artifacts_in_both_formats() {
    let dir = scratch("profile_cli");

    // Collapsed stacks: the command must self-validate (re-parse its
    // own artifact) and say so.
    let collapsed = dir.join("xar.collapsed");
    let out = xar(&[
        "profile", "--out", collapsed.to_str().unwrap(), "--rows", "14", "--cols", "14",
        "--trips", "300", "--seed", "11",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("validated      : round-trip ok"), "{stdout}");
    let text = std::fs::read_to_string(&collapsed).expect("collapsed artifact");
    // Every line is `frame;frame;... weight` — spot-check the shape and
    // that engine spans made it into the stacks.
    assert!(text.lines().all(|l| l.rsplit_once(' ').is_some_and(
        |(stack, w)| !stack.is_empty() && w.parse::<u64>().is_ok()
    )), "malformed collapsed output:\n{text}");
    assert!(text.contains("request;"), "no request root frames:\n{text}");

    // Speedscope JSON, with allocation attribution enabled.
    let speedscope = dir.join("xar.speedscope.json");
    let out = xar(&[
        "profile", "--out", speedscope.to_str().unwrap(), "--format", "speedscope",
        "--alloc", "--rows", "14", "--cols", "14", "--trips", "300", "--seed", "11",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("validated      : round-trip ok"), "{stdout}");
    assert!(stdout.contains("span (allocations)"), "{stdout}");
    let json = std::fs::read_to_string(&speedscope).expect("speedscope artifact");
    assert!(json.contains("\"$schema\""), "not a speedscope document:\n{json}");

    // An unknown format is rejected before any simulation runs.
    let out = xar(&["profile", "--out", collapsed.to_str().unwrap(), "--format", "svg"]);
    assert_eq!(code(&out), 1, "{out:?}");
}

#[test]
fn logs_exit_codes_are_distinct_per_failure_class() {
    let dir = scratch("logs_codes");

    // 2: file unreadable.
    let out = xar(&["logs", "--in", dir.join("missing.jsonl").to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{out:?}");

    // 2: not a valid events file.
    let bad = dir.join("bad.jsonl");
    write(&bad, "this is not an events file");
    let out = xar(&["logs", "--in", bad.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{out:?}");

    // 3: structurally valid file with zero events.
    let empty = dir.join("empty.jsonl");
    write(
        &empty,
        "{\"type\":\"meta\",\"version\":1,\"segment_len\":4096}\n\
         {\"type\":\"drops\",\"emitted\":0,\"dropped\":0,\"kept\":0}\n",
    );
    let out = xar(&["logs", "--in", empty.to_str().unwrap()]);
    assert_eq!(code(&out), 3, "{out:?}");

    // 9: invalid filter values, each naming the offending flag. These
    // are validated before the file is opened.
    let missing = dir.join("missing.jsonl").to_str().unwrap().to_string();
    for args in [
        ["logs", "--in", &missing, "--outcome", "rejected"],
        ["logs", "--in", &missing, "--reason", "bad_luck"],
        ["logs", "--in", &missing, "--slower-than", "fast"],
        ["logs", "--in", &missing, "--slower-than", "-5"],
        ["logs", "--in", &missing, "--request", "abc"],
        ["logs", "--in", &missing, "--top", "-1"],
    ] {
        let out = xar(&args);
        assert_eq!(code(&out), 9, "{args:?} -> {out:?}");
        let msg = String::from_utf8_lossy(&out.stderr);
        assert!(msg.contains(args[3].trim_start_matches('-')), "{args:?}: {msg}");
    }

    // 1: missing required flag.
    let out = xar(&["logs"]);
    assert_eq!(code(&out), 1, "{out:?}");
}

#[test]
fn logs_answers_why_for_every_unserved_request_of_a_real_run() {
    let dir = scratch("logs_real");
    let region = dir.join("region.xarr");
    let out = xar(&[
        "build-region", "--rows", "14", "--cols", "14", "--seed", "21", "--clusters", "10",
        "--out", region.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "build-region failed: {out:?}");

    // A batch-dispatch run with the event sink on writes the JSONL file
    // and reports conserved accounting on stdout.
    let events = dir.join("events.jsonl");
    let out = xar(&[
        "simulate", "--region", region.to_str().unwrap(), "--trips", "400",
        "--dispatch", "batch:50", "--compress-day-s", "5",
        "--events-out", events.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("events         :"), "{stdout}");

    // The healthy path: the file parses, histograms print, exit 0.
    let out = xar(&["logs", "--in", events.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
    let summary = String::from_utf8_lossy(&out.stdout);
    assert!(summary.contains("outcomes       :"), "{summary}");

    // The acceptance property: every unserved request carries a typed
    // reason — filtering for reason=unknown matches nothing (exit 3).
    let out = xar(&["logs", "--in", events.to_str().unwrap(), "--reason", "unknown"]);
    assert_eq!(code(&out), 3, "unknown reasons leaked into a real run: {out:?}");

    // And any single request id can be interrogated (exit 0 when the
    // id exists in the file, with its full record printed).
    let out = xar(&["logs", "--in", events.to_str().unwrap(), "--request", "0"]);
    assert_eq!(code(&out), 0, "{out:?}");
    let record = String::from_utf8_lossy(&out.stdout);
    assert!(record.contains("req 0"), "{record}");
}

#[test]
fn write_bench_and_publish_coalesce_flags_validate_with_exit_9() {
    // Invalid values fail fast, before any region or workload is
    // built, each naming the offending flag.
    for args in [
        &["simulate", "--publish-coalesce-us", "nope"][..],
        &["simulate", "--publish-coalesce-us", "-5"][..],
        &["simulate", "--publish-coalesce-us", "1.5"][..],
        &["bench", "--write", "--trips", "nope"][..],
        &["bench", "--write", "--trips", "4"][..],
        &["bench", "--write", "--shards", "0"][..],
    ] {
        let out = xar(args);
        assert_eq!(code(&out), 9, "{args:?} -> {out:?}");
        let msg = String::from_utf8_lossy(&out.stderr);
        let flag = args.iter().find(|a| a.starts_with("--") && *a != &"--write").unwrap();
        assert!(msg.contains(flag.trim_start_matches('-')), "{args:?}: {msg}");
    }

    // A valid coalescing window is accepted end-to-end on the parallel
    // driver (the knob's home; the run must still exit 0).
    let dir = scratch("publish_coalesce");
    let region = dir.join("region.xarr");
    let out = xar(&[
        "build-region", "--rows", "10", "--cols", "10", "--seed", "7", "--out",
        region.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let out = xar(&[
        "simulate", "--region", region.to_str().unwrap(), "--trips", "120", "--threads", "2",
        "--shards", "2", "--publish-coalesce-us", "500",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
}

#[test]
fn write_bench_against_gate_exit_codes() {
    let dir = scratch("write_bench_against");

    // 2: missing baseline.
    let out = xar(&[
        "bench", "--write", "--rows", "10", "--cols", "10", "--trips", "64",
        "--against", dir.join("missing.json").to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2, "{out:?}");

    // 9: invalid tolerance is rejected before the baseline is read.
    let out = xar(&[
        "bench", "--write", "--rows", "10", "--cols", "10", "--trips", "64",
        "--against", dir.join("missing.json").to_str().unwrap(), "--tolerance", "nope",
    ]);
    assert_eq!(code(&out), 9, "{out:?}");

    // 2: a baseline of the wrong bench kind (points join on `mult`,
    // but the kind check fires first).
    let wrong_kind = dir.join("wrong_kind.json");
    write(
        &wrong_kind,
        r#"{"bench":"engine_scaling","points":[{"threads":1,"search_p50_ns":1}]}"#,
    );
    let out = xar(&[
        "bench", "--write", "--rows", "10", "--cols", "10", "--trips", "64",
        "--against", wrong_kind.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2, "{out:?}");

    // Self-comparison passes (exit 0) — the curve written by --json is
    // a valid baseline for the identical run.
    let json = dir.join("self.json");
    let out = xar(&[
        "bench", "--write", "--rows", "10", "--cols", "10", "--trips", "64",
        "--json", json.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let out = xar(&[
        "bench", "--write", "--rows", "10", "--cols", "10", "--trips", "64",
        "--against", json.to_str().unwrap(), "--tolerance", "10",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");

    // 7: an impossible baseline (publish must beat a fraction of a
    // nanosecond) trips the regression gate.
    let impossible = dir.join("impossible.json");
    write(
        &impossible,
        r#"{"bench":"write_microbench","points":[{"mult":1,"book_p50_ns":0.001,"book_p99_ns":0.001,"publish_p50_ns":0.001,"publish_p99_ns":0.001}]}"#,
    );
    let out = xar(&[
        "bench", "--write", "--rows", "10", "--cols", "10", "--trips", "64",
        "--against", impossible.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 7, "{out:?}");
    let msg = String::from_utf8_lossy(&out.stderr);
    assert!(msg.contains("regression"), "{msg}");
}

#[test]
fn bench_against_gate_exit_codes() {
    let dir = scratch("bench_against");

    // 2: baseline unreadable / wrong bench kind.
    let out = xar(&[
        "bench", "--rows", "10", "--cols", "10", "--trips", "60", "--threads", "1",
        "--against", dir.join("missing.json").to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2, "{out:?}");

    // 9: invalid tolerance, validated without measuring anything new…
    // (the flag gate runs after the measurement, so keep the run tiny).
    let out = xar(&[
        "bench", "--rows", "10", "--cols", "10", "--trips", "60", "--threads", "1",
        "--against", dir.join("missing.json").to_str().unwrap(), "--tolerance", "nope",
    ]);
    assert_eq!(code(&out), 9, "{out:?}");

    // Self-comparison: a fresh curve written then compared against
    // itself passes any tolerance (exit 0), and an absurdly tight
    // tolerance cannot fail a literal self-match either.
    let json = dir.join("self.json");
    let out = xar(&[
        "bench", "--rows", "10", "--cols", "10", "--trips", "60", "--threads", "1",
        "--json", json.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{out:?}");

    // 7: an impossible baseline (absurd throughput, zero-ish latency)
    // must trip the regression gate.
    let impossible = dir.join("impossible.json");
    write(
        &impossible,
        r#"{"bench":"engine_scaling","points":[{"threads":1,"requests_per_s":1e15,"search_p50_ns":0.001,"search_p99_ns":0.001}]}"#,
    );
    let out = xar(&[
        "bench", "--rows", "10", "--cols", "10", "--trips", "60", "--threads", "1",
        "--against", impossible.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 7, "{out:?}");
    let msg = String::from_utf8_lossy(&out.stderr);
    assert!(msg.contains("regression"), "{msg}");
}
