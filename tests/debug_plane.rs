//! Integration test of the live debug/profiling plane (ISSUE 7):
//! OpenMetrics latency exemplars on `/metrics` under real load, the
//! `/debug/epoch` and `/debug/shards` introspection routes reflecting
//! an *induced* epoch-reclamation backlog (a reader held pinned across
//! snapshot publishes), the `/debug/profile` aggregated span profile,
//! and `/health` turning 503 while the backlog breaches the threshold.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use xar_obs::serve::{serve, OpsPlane};
use xar_obs::slo::SloEngine;
use xar_obs::window::{WindowConfig, WindowStore};
use xhare_a_ride::core::{snapshot, EngineConfig, RideOffer, RideRequest, ShardedXarEngine};
use xhare_a_ride::discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xhare_a_ride::roadnet::{sample_pois, CityConfig, NodeId, PoiConfig, RoadGraph};

/// Minimal HTTP GET; returns (status_code, body).
fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect to ops server");
    write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 =
        head.split_whitespace().nth(1).and_then(|c| c.parse().ok()).expect("status code");
    (status, body.to_string())
}

fn offer(graph: &Arc<RoadGraph>, i: u32) -> RideOffer {
    let n = graph.node_count() as u32;
    RideOffer::simple(
        graph.point(NodeId((i * 37) % n)),
        graph.point(NodeId((i * 61 + n / 2) % n)),
        8.0 * 3600.0 + f64::from(i) * 60.0,
        3,
        3_000.0,
    )
}

#[test]
fn debug_plane_exposes_exemplars_epoch_backlog_and_shard_state() {
    let graph = Arc::new(CityConfig::manhattan(16, 16, 7).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 128, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::FixedCount(12), ..Default::default() },
    ));
    let engine = ShardedXarEngine::new(Arc::clone(&region), EngineConfig::default(), 4);

    // Ops plane over the engine's registry, debug hooks wired exactly
    // as `xar simulate --serve` wires them; huge tick keeps the
    // background ticker idle (deterministic test).
    let mut plane = OpsPlane::new(
        engine.registry(),
        Arc::new(WindowStore::new(WindowConfig { tick_ms: 600_000, capacity: 8 })),
        Arc::new(SloEngine::new(Vec::new())),
    );
    plane.max_backlog = Some(0);
    plane.debug.epoch = Some(Arc::new(|| snapshot::epoch_debug().to_json()));
    let hook_engine = engine.clone();
    plane.debug.shards = Some(Arc::new(move || hook_engine.shard_debug_json()));
    let server = serve("127.0.0.1:0", plane).expect("bind ops server");
    let addr = server.local_addr().to_string();

    // --- Load with tracing on: searches under an active trace offer
    // latency exemplars (trace id of the slowest recent samples).
    let rec = xar_obs::trace::recorder();
    rec.configure(xar_obs::TraceConfig::keep_all());
    rec.set_enabled(true);
    for i in 0..30 {
        let _ = engine.create_ride(&offer(&graph, i));
    }
    let n = graph.node_count() as u32;
    let req = RideRequest {
        source: graph.point(NodeId(n / 2)),
        destination: graph.point(NodeId(n - 1)),
        window_start_s: 7.5 * 3600.0,
        window_end_s: 9.5 * 3600.0,
        walk_limit_m: 800.0,
    };
    for _ in 0..20 {
        let _root = xar_obs::trace::root("request");
        let _ = engine.search(&req, 5);
    }
    rec.set_enabled(false);

    let (status, body) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains(" # {trace_id="), "no OpenMetrics exemplar rendered:\n{body}");
    let parsed = xar_obs::promtext::parse(&body).expect("exposition parses");
    let exemplar = parsed
        .samples
        .iter()
        .filter_map(|s| s.exemplar.as_ref().map(|e| (s.name.clone(), e.clone())))
        .next()
        .expect("at least one parsed exemplar");
    assert!(exemplar.0.starts_with("engine_search_ns"), "exemplar on {}", exemplar.0);
    assert!(exemplar.1.trace_id().is_some_and(|t| t.starts_with("0x")));

    // /debug/profile serves the aggregated span profile of the load.
    let (status, body) = http_get(&addr, "/debug/profile");
    assert_eq!(status, 200);
    let doc = xar_obs::json::parse(&body).expect("profile JSON parses");
    assert!(doc.get("profile").is_some(), "{body}");

    // Healthy before any backlog is induced.
    let (status, body) = http_get(&addr, "/health");
    assert_eq!(status, 200, "{body}");

    // --- Induce a retire backlog: hold an epoch pin (a stuck reader)
    // across snapshot publishes, so retired snapshots cannot be freed.
    {
        let _stuck_reader = snapshot::pin();
        for i in 30..45 {
            let _ = engine.create_ride(&offer(&graph, i));
        }

        let (status, body) = http_get(&addr, "/debug/epoch");
        assert_eq!(status, 200);
        let doc = xar_obs::json::parse(&body).expect("epoch JSON parses");
        assert!(
            doc.get("pinned").and_then(|v| v.as_u64()).unwrap_or(0) >= 1,
            "pinned reader not visible: {body}"
        );
        assert!(
            doc.get("stalled").and_then(|v| v.as_u64()).unwrap_or(0) >= 1,
            "stalled reader not flagged: {body}"
        );
        assert!(doc.get("min_active").and_then(|v| v.as_u64()).is_some(), "{body}");

        let (status, body) = http_get(&addr, "/debug/shards");
        assert_eq!(status, 200);
        let doc = xar_obs::json::parse(&body).expect("shards JSON parses");
        let shards = doc.get("shards").and_then(|v| v.as_array()).expect("shards array");
        assert_eq!(shards.len(), 4);
        let backlog: u64 = shards
            .iter()
            .map(|s| s.get("retired_backlog").and_then(|v| v.as_u64()).unwrap_or(0))
            .sum();
        assert!(backlog >= 1, "no retired backlog while a reader is pinned: {body}");
        // Publishes kept up with writes (no searchable-state lag).
        for s in shards {
            assert_eq!(s.get("publish_lag").and_then(|v| v.as_u64()), Some(0), "{body}");
        }

        // The backlog gauge breaches --max-backlog 0: health degrades.
        let (status, body) = http_get(&addr, "/health");
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("snapshot backlog"), "{body}");
    }

    // --- Reader gone: the next publishes reclaim everything.
    engine.track_all(f64::INFINITY);
    let (status, body) = http_get(&addr, "/debug/epoch");
    assert_eq!(status, 200);
    let doc = xar_obs::json::parse(&body).expect("epoch JSON parses");
    assert_eq!(doc.get("pinned").and_then(|v| v.as_u64()), Some(0), "{body}");
    let (status, body) = http_get(&addr, "/health");
    assert_eq!(status, 200, "backlog must drain once the reader unpins: {body}");
}
