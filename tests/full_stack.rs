//! Full-stack integration tests spanning every crate: pre-processing →
//! runtime → baseline → simulation → MMTP integration.

use std::sync::Arc;

use xhare_a_ride::core::{EngineConfig, XarEngine};
use xhare_a_ride::discretize::{ClusterGoal, ClusterId, RegionConfig, RegionIndex};
use xhare_a_ride::roadnet::{sample_pois, CityConfig, PoiConfig};
use xhare_a_ride::tshare::{TShareConfig, TShareEngine};
use xhare_a_ride::workload::{
    generate_trips, run_simulation, SimConfig, TShareBackend, TripGenConfig, XarBackend,
};

fn city() -> Arc<xhare_a_ride::roadnet::RoadGraph> {
    Arc::new(CityConfig::manhattan(35, 35, 4242).generate())
}

fn region(graph: &Arc<xhare_a_ride::roadnet::RoadGraph>) -> Arc<RegionIndex> {
    let pois = sample_pois(graph, &PoiConfig { count: 900, ..Default::default() });
    Arc::new(RegionIndex::build(
        Arc::clone(graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(200.0), ..Default::default() },
    ))
}

#[test]
fn end_to_end_day_preserves_every_invariant() {
    let graph = city();
    let reg = region(&graph);
    let trips = generate_trips(&graph, &TripGenConfig { count: 800, ..Default::default() });
    let mut backend = XarBackend::new(XarEngine::new(Arc::clone(&reg), EngineConfig::default()));
    let report = run_simulation(&mut backend, &trips, &SimConfig::default());

    // Conservation: every trip is accounted for.
    assert_eq!(report.booked + report.created + report.unservable, trips.len() as u64);

    let eng = &backend.engine;
    // Invariant 1: seats never negative, bookings per ride <= offered seats.
    for ride in eng.rides() {
        assert!(ride.bookings.len() <= 3);
        assert_eq!(ride.seats_available as usize + ride.bookings.len(), 3);
        // Invariant 2: detour accounting is exact.
        let total: f64 = ride.bookings.iter().map(|b| b.detour_m).sum();
        assert!((total - ride.detour_used_m).abs() < 1e-6);
        // Invariant 3: via-points ordered and on the route.
        for w in ride.via_points.windows(2) {
            assert!(w[0].route_idx <= w[1].route_idx);
        }
        for v in &ride.via_points {
            assert_eq!(ride.route.nodes()[v.route_idx], v.node);
        }
    }

    // Invariant 4: the cluster index is exactly the union of the rides'
    // pass-through + reachable cluster sets.
    let mut expected = std::collections::HashSet::new();
    for ride in eng.rides() {
        for p in &ride.pass_clusters {
            expected.insert((p.cluster, ride.id));
            for &(c, _, _) in &p.reachable {
                expected.insert((c, ride.id));
            }
        }
    }
    let mut actual = std::collections::HashSet::new();
    for c in 0..eng.region().cluster_count() as u32 {
        for e in eng.index().entries_of(ClusterId(c)) {
            actual.insert((ClusterId(c), e.ride));
        }
    }
    assert_eq!(actual, expected, "index diverged from ride state");

    // Invariant 5: walking limits were honoured for every booking.
    for w in &report.walk_m {
        assert!(*w <= 800.0 + 1e-9);
    }
}

#[test]
fn quality_guarantee_holds_across_a_day() {
    let graph = city();
    let reg = region(&graph);
    let eps = reg.epsilon_m();
    let trips = generate_trips(&graph, &TripGenConfig { count: 600, seed: 5, ..Default::default() });
    let mut backend = XarBackend::new(XarEngine::new(reg, EngineConfig::default()));
    let report = run_simulation(&mut backend, &trips, &SimConfig::default());
    assert!(report.booked > 20, "not enough bookings to evaluate quality");
    // The limit-excess distribution must be overwhelmingly within the
    // theorem's neighbourhood: median 0, majority below eps.
    let excess = &report.detour_excess_m;
    let zero = excess.iter().filter(|&&e| e == 0.0).count() as f64 / excess.len() as f64;
    let within_eps = excess.iter().filter(|&&e| e <= eps).count() as f64 / excess.len() as f64;
    assert!(zero >= 0.5, "limit held for only {:.0}% of bookings", zero * 100.0);
    assert!(within_eps >= 0.8, "only {:.0}% within eps", within_eps * 100.0);
}

#[test]
fn xar_and_tshare_find_overlapping_supply() {
    // Consistency: the two systems, fed the same offers, should agree
    // that supply exists; XAR must not hallucinate matches where the
    // grid baseline finds dozens, nor vice versa.
    let graph = city();
    let reg = region(&graph);
    let trips = generate_trips(&graph, &TripGenConfig { count: 500, seed: 6, ..Default::default() });

    let mut xar = XarBackend::new(XarEngine::new(reg, EngineConfig::default()));
    let rx = run_simulation(&mut xar, &trips, &SimConfig::default());
    let mut ts = TShareBackend::new(TShareEngine::new(
        Arc::clone(&graph),
        TShareConfig { grid_cell_m: 500.0, ..Default::default() },
    ));
    let rt = run_simulation(&mut ts, &trips, &SimConfig::default());

    let (sx, st) = (rx.share_rate(), rt.share_rate());
    assert!(sx > 0.05 && st > 0.05, "share rates collapsed: XAR {sx:.2}, T-Share {st:.2}");
    assert!(
        (sx - st).abs() < 0.5,
        "systems disagree wildly on supply: XAR {sx:.2} vs T-Share {st:.2}"
    );
}

#[test]
fn search_latency_dominates_baseline_by_an_order_of_magnitude() {
    // The headline claim, as a coarse integration-level check (exact
    // numbers live in the bench harnesses): XAR total search time must
    // be at least 10x cheaper than T-Share's on the same workload.
    let graph = city();
    let reg = region(&graph);
    let trips = generate_trips(&graph, &TripGenConfig { count: 400, seed: 7, ..Default::default() });
    let mut xar = XarBackend::new(XarEngine::new(reg, EngineConfig::default()));
    let rx = run_simulation(&mut xar, &trips, &SimConfig::default());
    let mut ts = TShareBackend::new(TShareEngine::new(Arc::clone(&graph), TShareConfig::default()));
    let rt = run_simulation(&mut ts, &trips, &SimConfig::default());
    assert!(
        rt.total_search_s() > 10.0 * rx.total_search_s(),
        "XAR search {:.4}s vs T-Share {:.4}s — advantage below 10x",
        rx.total_search_s(),
        rt.total_search_s()
    );
}

#[test]
fn tracking_keeps_index_bounded_over_the_day() {
    let graph = city();
    let reg = region(&graph);
    let trips = generate_trips(&graph, &TripGenConfig { count: 700, seed: 8, ..Default::default() });
    let mut backend = XarBackend::new(XarEngine::new(reg, EngineConfig::default()));
    let _ = run_simulation(&mut backend, &trips, &SimConfig::default());
    // Sweep far past the last arrival: everything must retire.
    backend.engine.track_all(86_400.0 * 2.0);
    assert_eq!(backend.engine.ride_count(), 0, "rides outlived their routes");
    assert_eq!(backend.engine.index().len(), 0, "index entries leaked");
}
