//! Quickstart: build a city, discretize it, offer a ride, search for a
//! match, book it, and track the ride — the whole XAR lifecycle in one
//! file.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use xhare_a_ride::core::{EngineConfig, RideOffer, RideRequest, XarEngine};
use xhare_a_ride::discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xhare_a_ride::roadnet::{sample_pois, CityConfig, NodeId, PoiConfig};

fn main() {
    // 1. A road network. (In production this would come from OSM; the
    //    generator builds a Manhattan-style lattice with one-ways,
    //    avenues and streets.)
    let graph = Arc::new(CityConfig::manhattan(40, 40, 7).generate());
    println!("city: {} intersections, {} road segments", graph.node_count(), graph.edge_count());

    // 2. Pre-processing (paper §IV-§V): sample POIs, filter landmarks,
    //    cluster them with the GREEDYSEARCH bicriteria algorithm
    //    (δ = 250 m ⇒ every intra-cluster distance ≤ 4δ = 1 km).
    let pois = sample_pois(&graph, &PoiConfig { count: 800, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(250.0), ..Default::default() },
    ));
    println!(
        "discretization: {} landmarks -> {} clusters, realised epsilon = {:.0} m",
        region.landmark_count(),
        region.cluster_count(),
        region.epsilon_m()
    );

    // 3. The runtime unit.
    let mut engine = XarEngine::new(Arc::clone(&region), EngineConfig::default());

    // A driver offers a ride across the city at 08:00, 3 free seats,
    // willing to detour up to 3 km.
    let n = graph.node_count() as u32;
    let offer = RideOffer {
        source: graph.point(NodeId(0)),
        destination: graph.point(NodeId(n - 1)),
        departure_s: 8.0 * 3600.0,
        seats: 3,
        detour_limit_m: 3_000.0, driver: None, via: Vec::new(),
    };
    let ride_id = engine.create_ride(&offer).expect("routable offer");
    let ride = engine.ride(ride_id).unwrap();
    println!(
        "\nride {ride_id:?}: {:.1} km route, {} pass-through clusters",
        ride.route.dist_m() / 1000.0,
        ride.pass_clusters.len()
    );

    // 4. A rider near the middle of the route wants to go the same way.
    // The city is a ~40x40 row-major lattice, so node n/2 + 20 sits
    // near the geometric centre — right by the offered route.
    let request = RideRequest {
        source: graph.point(NodeId(n / 2 + 20)),
        destination: graph.point(NodeId(n - 5)),
        window_start_s: 7.75 * 3600.0,
        window_end_s: 8.75 * 3600.0,
        walk_limit_m: 800.0,
    };
    let matches = engine.search(&request, 5).expect("serviceable request");
    println!("\nsearch returned {} match(es) — no shortest path was computed:", matches.len());
    for m in &matches {
        println!(
            "  ride {:?}: walk {:.0} m, pick-up {} at cluster {:?}, est. detour {:.0} m",
            m.ride,
            m.walk_total_m(),
            hhmm(m.eta_pickup_s),
            m.pickup_cluster,
            m.detour_est_m
        );
    }

    // 5. Book the best match (least walking).
    let outcome = engine.book(&matches[0]).expect("booking succeeds");
    println!(
        "\nbooked: pick-up {} / drop-off {}, actual detour {:.0} m (estimated {:.0} m), {} shortest paths",
        hhmm(outcome.pickup_eta_s),
        hhmm(outcome.dropoff_eta_s),
        outcome.actual_detour_m,
        outcome.estimated_detour_m,
        outcome.shortest_paths
    );

    // 6. Track the ride halfway and to completion.
    let ride = engine.ride(ride_id).unwrap();
    let halfway = ride.departure_s + ride.route.duration_s() / 2.0;
    let arrival = ride.arrival_s();
    engine.track_ride(ride_id, halfway).unwrap();
    println!(
        "\nat {}: progress way-point {}, {} pass-through clusters still ahead",
        hhmm(halfway),
        engine.ride(ride_id).unwrap().progress_idx,
        engine.ride(ride_id).unwrap().pass_clusters.len()
    );
    let status = engine.track_ride(ride_id, arrival + 1.0).unwrap();
    println!("at {}: ride {:?} -> {status:?}, index entries left: {}", hhmm(arrival), ride_id, engine.index().len());
}

fn hhmm(s: f64) -> String {
    format!("{:02}:{:02}", (s / 3600.0) as u32, ((s % 3600.0) / 60.0) as u32)
}
