//! A full simulated day of dynamic ride sharing: the paper's §X.A.2
//! protocol over a rush-hour taxi workload, with live tracking, printing
//! the aggregate system behaviour.
//!
//! ```sh
//! cargo run --release --example city_simulation [-- <trip_count>]
//! ```

use std::sync::Arc;

use xhare_a_ride::core::{EngineConfig, XarEngine};
use xhare_a_ride::discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xhare_a_ride::roadnet::{sample_pois, CityConfig, PoiConfig};
use xhare_a_ride::workload::{
    generate_trips, percentile_ns, run_simulation, SimConfig, TripGenConfig, XarBackend,
};

fn main() {
    let trip_count: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(8_000);

    let graph = Arc::new(CityConfig::manhattan(60, 60, 2024).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 1_500, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(250.0), ..Default::default() },
    ));
    println!(
        "city: {} nodes | {} landmarks | {} clusters | epsilon {:.0} m",
        graph.node_count(),
        region.landmark_count(),
        region.cluster_count(),
        region.epsilon_m()
    );

    let trips = generate_trips(&graph, &TripGenConfig { count: trip_count, ..Default::default() });
    println!("workload: {} trips across the day (rush-hour peaks, hotspot skew)\n", trips.len());

    let mut backend = XarBackend::new(XarEngine::new(region, EngineConfig::default()));
    let report = run_simulation(&mut backend, &trips, &SimConfig::default());

    println!("== outcome ==");
    println!("booked (shared):    {:>8}", report.booked);
    println!("created (new car):  {:>8}", report.created);
    println!("unservable:         {:>8}", report.unservable);
    println!("share rate:         {:>7.1}%", report.share_rate() * 100.0);
    println!("matches per search: {:>8.2}", report.matches_returned as f64 / report.looks.max(1) as f64);

    println!("\n== latency ==");
    println!(
        "search  avg {:>9.1} µs   p95 {:>9.1} µs   p99 {:>9.1} µs",
        report.mean_search_ms() * 1e3,
        percentile_ns(&report.search_ns, 95.0) / 1e3,
        percentile_ns(&report.search_ns, 99.0) / 1e3,
    );
    println!(
        "create  p50 {:>9.1} µs   p95 {:>9.1} µs",
        percentile_ns(&report.create_ns, 50.0) / 1e3,
        percentile_ns(&report.create_ns, 95.0) / 1e3,
    );
    println!(
        "book    p50 {:>9.1} µs   p95 {:>9.1} µs",
        percentile_ns(&report.book_ns, 50.0) / 1e3,
        percentile_ns(&report.book_ns, 95.0) / 1e3,
    );

    let s = backend.engine.stats().snapshot();
    let (searches, creates, bookings, tracks, sps) =
        (s.searches, s.creates, s.bookings, s.tracks, s.shortest_paths);
    println!("\n== engine counters ==");
    println!("searches {searches} | creates {creates} | bookings {bookings} | tracking sweeps {tracks}");
    println!("shortest paths computed: {sps} (creation + booking only — zero on the search path)");
    println!("live rides at end of day: {}", backend.engine.ride_count());
    println!("index entries: {}", backend.engine.index().len());
    println!("runtime state: {:.1} MiB", backend.engine.heap_bytes() as f64 / (1024.0 * 1024.0));

    let errors = report.detour_errors_m();
    if !errors.is_empty() {
        let eps = backend.engine.region().epsilon_m();
        let within =
            errors.iter().filter(|&&e| e <= eps).count() as f64 / errors.len() as f64 * 100.0;
        println!("\ndetour-approximation error within epsilon: {within:.1}% of bookings");
    }
}
