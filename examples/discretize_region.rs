//! The pre-processing pipeline in slow motion: landmark filtering, the
//! CLUSTERMINIMIZATION approximation (GREEDYSEARCH) with its probe
//! trace, and the Theorem 6 guarantee checked against the instance.
//!
//! ```sh
//! cargo run --release --example discretize_region
//! ```

use xhare_a_ride::discretize::greedy_search::greedy_search;
use xhare_a_ride::discretize::ilp::ClusterIlp;
use xhare_a_ride::discretize::landmarks::filter_landmarks;
use xhare_a_ride::discretize::LandmarkMetric;
use xhare_a_ride::roadnet::{prune_insignificant, sample_pois, CityConfig, PoiConfig};

fn main() {
    let graph = CityConfig::manhattan(45, 45, 31).generate();
    println!("road network: {} way-points, {} segments", graph.node_count(), graph.edge_count());

    // POIs: the Google-Places stand-in, then the paper's two filters.
    let pois = sample_pois(&graph, &PoiConfig { count: 2_500, ..Default::default() });
    let significant = prune_insignificant(&pois);
    println!(
        "POIs: {} sampled -> {} significant (minor amenities pruned, as in §X.A.3)",
        pois.len(),
        significant.len()
    );
    let f = 220.0;
    let landmarks = filter_landmarks(&graph, &pois, f);
    println!("landmark filter (f = {f} m): {} landmarks survive", landmarks.len());

    // Pairwise driving distances (parallel Dijkstra per landmark).
    let metric = LandmarkMetric::compute(&graph, &landmarks);
    println!(
        "inter-landmark distance table: {} x {} ({:.1} MiB)",
        metric.len(),
        metric.len(),
        metric.heap_bytes() as f64 / (1024.0 * 1024.0)
    );

    // GREEDYSEARCH for several deltas, with the probe trace the paper's
    // pseudo-code records.
    for delta in [150.0, 250.0, 500.0] {
        let out = greedy_search(&metric, delta);
        println!("\nGREEDYSEARCH(delta = {delta} m):");
        for probe in &out.trace {
            println!(
                "  probe k = {:>4} -> GREEDY radius {:>7.0} m  ({})",
                probe.k,
                probe.radius,
                if probe.radius <= 2.0 * delta { "feasible, go lower" } else { "> 2 delta, go higher" }
            );
        }
        let c = &out.clustering;
        let diameter = c.max_diameter(&metric);
        println!(
            "  k_ALG = {} clusters | radius {:.0} m (≤ 2 delta = {:.0}) | diameter {:.0} m (≤ 4 delta = {:.0})",
            c.k,
            c.radius,
            2.0 * delta,
            diameter,
            4.0 * delta
        );
        assert!(c.radius <= 2.0 * delta + 1e-9, "Theorem 6 radius bound violated");
        assert!(diameter <= 4.0 * delta + 1e-9, "Theorem 6 diameter bound violated");

        // ILP view of the same instance.
        let ilp = ClusterIlp::new(&metric, 4.0 * delta);
        println!(
            "  ILP at the stretched threshold: {} variables, {} constraints, feasible = {}",
            ilp.variable_count(),
            ilp.constraint_count(),
            ilp.is_feasible(c)
        );
        println!(
            "  independent-set lower bound at delta: >= {} clusters needed",
            ClusterIlp::new(&metric, delta).independent_set_lower_bound()
        );
    }
}
