//! Deploy-once pre-processing: build a region, persist it, reload it
//! in a "fresh process" and serve requests — the §III deployment story.
//!
//! ```sh
//! cargo run --release --example persist_and_reload
//! ```

use std::sync::Arc;
use std::time::Instant;

use xhare_a_ride::core::{EngineConfig, RideOffer, RideRequest, XarEngine};
use xhare_a_ride::discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xhare_a_ride::roadnet::{sample_pois, CityConfig, NodeId, PoiConfig};

fn main() -> std::io::Result<()> {
    let path = std::env::temp_dir().join("xar_example_region.xarr");

    // ---- Pre-processing (run once per region) ----
    let t0 = Instant::now();
    let graph = Arc::new(CityConfig::manhattan(50, 50, 77).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 1_200, ..Default::default() });
    let region = RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(250.0), ..Default::default() },
    );
    let build_time = t0.elapsed();
    region.save(&path)?;
    let file_size = std::fs::metadata(&path)?.len();
    println!(
        "pre-processed in {:.2?}: {} landmarks -> {} clusters (epsilon {:.0} m)",
        build_time,
        region.landmark_count(),
        region.cluster_count(),
        region.epsilon_m()
    );
    println!("persisted to {} ({:.1} KiB)", path.display(), file_size as f64 / 1024.0);
    drop(region);
    drop(graph);

    // ---- Deployment start-up (every process restart) ----
    let t1 = Instant::now();
    let region = Arc::new(RegionIndex::load(&path)?);
    println!(
        "reloaded in {:.2?} ({}x faster than rebuilding)",
        t1.elapsed(),
        (build_time.as_secs_f64() / t1.elapsed().as_secs_f64()) as u64
    );

    // The reloaded region serves immediately.
    let g = Arc::clone(region.graph());
    let n = g.node_count() as u32;
    let mut engine = XarEngine::new(region, EngineConfig::default());
    engine
        .create_ride(&RideOffer::simple(
            g.point(NodeId(0)),
            g.point(NodeId(n - 1)),
            8.0 * 3600.0,
            3,
            3_000.0,
        ))
        .expect("offer routable");
    let matches = engine
        .search(
            &RideRequest {
                source: g.point(NodeId(n / 2)),
                destination: g.point(NodeId(n - 3)),
                window_start_s: 7.5 * 3600.0,
                window_end_s: 9.0 * 3600.0,
                walk_limit_m: 800.0,
            },
            5,
        )
        .expect("serviceable");
    println!("search on the reloaded region returned {} match(es)", matches.len());

    std::fs::remove_file(&path).ok();
    Ok(())
}
