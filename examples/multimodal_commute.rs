//! Multi-modal commuting with ride-share integration (paper §IX): plan
//! a transit trip, then let XAR repair its painful segments (Aider
//! mode) and try whole-segment substitutions (Enhancer mode).
//!
//! ```sh
//! cargo run --release --example multimodal_commute
//! ```

use std::sync::Arc;

use xhare_a_ride::core::{EngineConfig, RideOffer, XarEngine};
use xhare_a_ride::discretize::{ClusterGoal, RegionConfig, RegionIndex};
use xhare_a_ride::mmtp::{aid_plan, enhance_plan, AiderConfig, EnhancerConfig};
use xhare_a_ride::roadnet::{sample_pois, CityConfig, NodeId, PoiConfig};
use xhare_a_ride::transit::{
    generate::generate_transit, Leg, TransitGenConfig, TransitRouter, TripPlan, WalkParams,
};

fn describe(plan: &TripPlan, label: &str) {
    println!(
        "{label}: {:.1} min travel | {:.1} min walking | {:.1} min waiting | {} vehicle leg(s), {} hop(s)",
        plan.travel_time_s() / 60.0,
        plan.walk_time_s() / 60.0,
        plan.wait_time_s() / 60.0,
        plan.vehicle_legs(),
        plan.hops()
    );
    for leg in &plan.legs {
        match leg {
            Leg::Walk { dist_m, duration_s, .. } => {
                println!("    walk    {:>6.0} m  ({:.1} min)", dist_m, duration_s / 60.0)
            }
            Leg::Wait { stop, duration_s } => {
                println!("    wait    at stop {:?} ({:.1} min)", stop, duration_s / 60.0)
            }
            Leg::WaitAt { duration_s, .. } => {
                println!("    wait    at pick-up landmark ({:.1} min)", duration_s / 60.0)
            }
            Leg::Transit { line, from, to, board_s, alight_s } => println!(
                "    transit line {:?} {:?} -> {:?} ({:.1} min)",
                line,
                from,
                to,
                (alight_s - board_s) / 60.0
            ),
            Leg::SharedRide { board_s, alight_s, .. } => {
                println!("    XAR ride ({:.1} min)", (alight_s - board_s) / 60.0)
            }
        }
    }
}

fn main() {
    let graph = Arc::new(CityConfig::manhattan(50, 50, 99).generate());
    let pois = sample_pois(&graph, &PoiConfig { count: 1_200, ..Default::default() });
    let region = Arc::new(RegionIndex::build(
        Arc::clone(&graph),
        &pois,
        RegionConfig { cluster_goal: ClusterGoal::Delta(250.0), ..Default::default() },
    ));

    // Sparse transit: long headways mean painful waits — the scenario
    // ride sharing exists to fix.
    let net = generate_transit(
        &graph,
        &TransitGenConfig {
            subway_lines: 2,
            bus_lines: 3,
            bus_headway_s: 1_500.0,
            subway_headway_s: 900.0,
            ..Default::default()
        },
    );
    let router = TransitRouter::new(&graph, &net, WalkParams::default());
    println!("transit: {} stops, {} lines", net.stop_count(), net.line_count());

    // Populate XAR with commuter ride offers.
    let mut xar = XarEngine::new(Arc::clone(&region), EngineConfig::default());
    let n = graph.node_count() as u32;
    let mut created = 0;
    for i in 0..150u32 {
        let offer = RideOffer {
            source: graph.point(NodeId((i * 131) % n)),
            destination: graph.point(NodeId((i * 197 + n / 2) % n)),
            departure_s: 8.0 * 3600.0 + f64::from(i) * 45.0,
            seats: 3,
            detour_limit_m: 4_000.0, driver: None, via: Vec::new(),
        };
        created += usize::from(xar.create_ride(&offer).is_ok());
    }
    println!("ride pool: {created} offers\n");

    // The commuter: cross-town at 08:10.
    let origin = graph.point(NodeId(7));
    let destination = graph.point(NodeId(n - 11));
    let depart = 8.0 * 3600.0 + 600.0;

    let base = router.plan(&origin, &destination, depart).expect("transit plan exists");
    describe(&base, "\n[PT only]  ");
    let bad = base.infeasible_legs(1_000.0, 600.0);
    println!("    -> {} infeasible leg(s) under the 1 km / 10 min thresholds", bad.len());

    // Aider mode.
    let aided = aid_plan(&base, destination, &net, &router, &mut xar, &AiderConfig::default());
    describe(&aided.plan, "\n[Aider]    ");
    println!("    -> {} segment(s) replaced by shared rides, {} unresolved", aided.replaced, aided.unresolved);

    // Enhancer mode (on the original plan, fresh engine view).
    let enhanced = enhance_plan(
        &base,
        origin,
        destination,
        &net,
        &router,
        &mut xar,
        &EnhancerConfig::default(),
    );
    describe(&enhanced.plan, "\n[Enhancer] ");
    match enhanced.substituted {
        Some((i, j)) => println!(
            "    -> substituted hop segment ({i}, {j}) after {} XAR searches",
            enhanced.searches
        ),
        None => println!("    -> no substitution improved the plan ({} searches)", enhanced.searches),
    }
}
